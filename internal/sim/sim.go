package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Time is simulated time in picoseconds.
type Time uint64

// Infinity is a time later than any event.
const Infinity Time = math.MaxUint64

// Simulator owns clocks, threads, components, and simulated time.
type Simulator struct {
	clocks  []*Clock
	now     Time
	stopped atomic.Bool
	// aborted is the hard-stop flag: set only on thread panics, it
	// terminates partition workers mid-window. Cooperative Stop sets
	// only stopped, which partitioned runs honour at window barriers —
	// a mid-window stop would truncate shards at whatever key each had
	// reached, making the result depend on the shard count.
	aborted atomic.Bool
	errMu   sync.Mutex
	err     error
	errKey  uint64 // edge key of err, for deterministic first-panic merge

	// ordered caches s.clocks sorted by name for deterministic coincident
	// edge firing; due is the reusable scratch list of clocks firing at
	// the current step.
	ordered      []*Clock
	orderedDirty bool
	due          []*Clock

	metrics *stats.Registry
	root    *Component
	comps   map[string]*Component
	design  *Design

	tracer *trace.Recorder

	// engine is non-nil while a partition-parallel run (see partition.go)
	// is executing; the sequential kernel never sets it.
	engine *Engine
}

// New returns an empty simulator at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time. During a partition-parallel
// run global time is only defined at window barriers; components that
// execute inside clock edges must use Clock.Now instead, which is the
// same value in a sequential run and the shard-local time in a
// partitioned one.
func (s *Simulator) Now() Time { return s.now }

// TotalEdges returns the number of clock edges processed so far, a proxy
// for total simulation work across all domains. It is the sum of every
// clock's cycle count, so sequential and partitioned runs agree.
func (s *Simulator) TotalEdges() uint64 {
	var t uint64
	for _, c := range s.clocks {
		t += c.cycle.Load()
	}
	return t
}

// Clocks returns the simulator's clocks in creation order. The partition
// planner chunks this order into shards, so builders that create clocks
// in spatial order (the SoC mesh is row-major) get spatially contiguous
// shards for free.
func (s *Simulator) Clocks() []*Clock {
	return append([]*Clock(nil), s.clocks...)
}

// Stop requests that the simulation stop after the current edge completes.
// It is safe to call from threads and hooks on any shard. A sequential
// run stops before the next edge; a partition-parallel run finishes its
// current window first (see Engine.Run), so the stopping point does not
// depend on the shard count.
func (s *Simulator) Stop() { s.stopped.Store(true) }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped.Load() }

// Err returns the first error raised by a thread panic, if any.
func (s *Simulator) Err() error { return s.err }

// setErrAt records a thread-panic error stamped with the edge key (time,
// clock order) it occurred at, keeping the error with the smallest key —
// the one a sequential run would have hit first. Partitioned shards may
// race to report panics from different edges; the merge makes the
// surviving error deterministic. Callers must hold the engine lock in
// partitioned mode; the sequential kernel is single-threaded.
func (s *Simulator) setErrAt(key uint64, err error) {
	if s.err == nil || key < s.errKey {
		s.err, s.errKey = err, key
	}
}

// Metrics returns the simulator's metrics registry, creating it on first
// use. The kernel publishes its own counters under the "sim" component.
func (s *Simulator) Metrics() *stats.Registry {
	if s.metrics == nil {
		s.metrics = stats.New()
		s.metrics.TreeSource(func(emit stats.EmitAt) {
			emit("sim", "total_edges", float64(s.TotalEdges()))
			emit("sim", "now_ps", float64(s.now))
			for _, c := range s.clocks {
				p := "sim/clk[" + c.name + "]"
				emit(p, "cycles", float64(c.cycle.Load()))
				emit(p, "period_ps", float64(c.period))
				emit(p, "processes", float64(len(c.threads)))
			}
		})
	}
	return s.metrics
}

// Arm attaches a handshake-event recorder to the simulation. Components
// that emit trace events cache their *trace.Subject handle at
// construction time, so Arm must be called before the design is built;
// arming after components exist leaves them untraced. Arming a nil
// recorder disarms. Tracing is pure observation: an armed simulation
// steps through exactly the same cycles as a disarmed one.
func (s *Simulator) Arm(r *trace.Recorder) { s.tracer = r }

// Tracer returns the armed handshake-event recorder, or nil when the
// simulation is disarmed. Component constructors use
//
//	sub := clk.Sim().Tracer().Subject(path)
//
// which yields a nil Subject when disarmed (Subject is nil-receiver
// safe), keeping every emission site a single pointer check.
func (s *Simulator) Tracer() *trace.Recorder { return s.tracer }

// Component is a node in the design hierarchy. Paths are "/"-separated
// segments from the root ("soc/pe[3]/inject"); replicated elements use a
// bracketed index segment. Components key the metrics registry and give
// threads and hooks an introspectable home.
type Component struct {
	sim      *Simulator
	parent   *Component
	name     string // final path segment; "" for the root
	path     string // full path; "" for the root
	children map[string]*Component
	order    []string // child names in creation order
}

// Root returns the root of the component tree, creating it on first use.
func (s *Simulator) Root() *Component {
	if s.root == nil {
		s.root = &Component{sim: s, children: make(map[string]*Component)}
		s.comps = map[string]*Component{"": s.root}
	}
	return s.root
}

// Component returns the component at path, creating it (and any missing
// ancestors) on first use. The empty path names the root.
func (s *Simulator) Component(path string) *Component {
	c := s.Root()
	if path == "" {
		return c
	}
	if got, ok := s.comps[path]; ok {
		return got
	}
	for _, seg := range strings.Split(path, "/") {
		c = c.Child(seg)
	}
	return c
}

// Lookup returns the component at path without creating it.
func (s *Simulator) Lookup(path string) (*Component, bool) {
	if s.comps == nil {
		return nil, false
	}
	c, ok := s.comps[path]
	return c, ok
}

// Child returns the direct child with the given name, creating it on
// first use. Names must be non-empty and must not contain "/".
func (c *Component) Child(name string) *Component {
	if name == "" || strings.Contains(name, "/") {
		panic(fmt.Sprintf("sim: bad component name %q", name))
	}
	if got, ok := c.children[name]; ok {
		return got
	}
	path := name
	if c.path != "" {
		path = c.path + "/" + name
	}
	child := &Component{
		sim:      c.sim,
		parent:   c,
		name:     name,
		path:     path,
		children: make(map[string]*Component),
	}
	c.children[name] = child
	c.order = append(c.order, name)
	c.sim.comps[path] = child
	return child
}

// Name returns the component's final path segment ("" for the root).
func (c *Component) Name() string { return c.name }

// Path returns the component's full hierarchical path ("" for the root).
func (c *Component) Path() string { return c.path }

// Parent returns the enclosing component (nil for the root).
func (c *Component) Parent() *Component { return c.parent }

// Children returns the direct children in creation order.
func (c *Component) Children() []*Component {
	out := make([]*Component, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.children[n])
	}
	return out
}

// Walk visits c and every descendant in creation order.
func (c *Component) Walk(fn func(*Component)) {
	fn(c)
	for _, n := range c.order {
		c.children[n].Walk(fn)
	}
}

// Counter returns the metric counter (c.Path(), name).
func (c *Component) Counter(name string) *stats.Counter {
	return c.sim.Metrics().Counter(c.path, name)
}

// Gauge returns the metric gauge (c.Path(), name).
func (c *Component) Gauge(name string) *stats.Gauge {
	return c.sim.Metrics().Gauge(c.path, name)
}

// Source registers a snapshot-time metrics callback under the
// component's path.
func (c *Component) Source(fn func(stats.Emit)) {
	c.sim.Metrics().Source(c.path, fn)
}

// Clock is a clock domain. Processes and threads attach to exactly one
// clock and observe its rising edges.
//
// The scheduling fields (next, cycle, pausedUntil, pauseImmuneAt) are
// atomics because a partition-parallel run lets the far side of a
// pausible bisync FIFO read and pause a clock owned by another shard;
// the sequential kernel uses the same fields single-threaded. The
// partition protocol (see partition.go) guarantees every cross-shard
// access observes exactly the value a sequential run would, so the
// atomics are for memory safety, not for ordering decisions.
type Clock struct {
	sim    *Simulator
	name   string
	period Time
	next   atomic.Uint64 // time of next rising edge
	cycle  atomic.Uint64

	// pausedUntil postpones edges (pausible clocking); pauseImmuneAt
	// marks one edge time that fires despite a covering pause, because
	// the pause was issued at that very instant — the moment the
	// sequential kernel freezes its due list, making the edge immune.
	pausedUntil   atomic.Uint64
	pauseImmuneAt atomic.Uint64

	// now is the time of the clock's current (or most recent) rising
	// edge. It is written only by the goroutine executing the clock's
	// edges, and is the simulated-time source for everything that runs
	// inside them.
	now Time

	// ord is the clock's index in the simulator's name-sorted clock
	// list, assigned when a partition plan is built; it tie-breaks
	// coincident cross-shard edges exactly like the sequential kernel's
	// name-ordered due list. shard and lane are set by the partition
	// engine for the duration of a partitioned run.
	ord   int
	shard *Shard
	lane  *trace.Lane

	// arbiters are the shards that can pause this clock across a
	// partition boundary; CrossingPause serializes racing pause
	// decisions against them (see Engine.arbitratePause).
	arbiters []*Shard

	threads  []*thread
	drives   []namedHook
	resolves []namedResolver
	commits  []namedHook
	monitors []namedHook
}

// namedHook is a phase callback with an introspectable identity; the
// name is conventionally the owning component's path (plus a suffix when
// one component registers several hooks in a phase).
type namedHook struct {
	name string
	fn   func()
}

type namedResolver struct {
	name string
	fn   func() bool
}

// AddClock creates a clock with the given period in picoseconds whose first
// rising edge occurs at phase ps after time zero.
func (s *Simulator) AddClock(name string, period, phase Time) *Clock {
	if period == 0 {
		panic("sim: zero clock period")
	}
	c := &Clock{sim: s, name: name, period: period}
	c.next.Store(uint64(phase))
	c.pauseImmuneAt.Store(uint64(Infinity))
	s.clocks = append(s.clocks, c)
	s.orderedDirty = true
	return c
}

// Name returns the clock's name.
func (c *Clock) Name() string { return c.name }

// Period returns the current period in picoseconds.
func (c *Clock) Period() Time { return c.period }

// SetPeriod retunes the clock; the change takes effect from the next edge.
// Adaptive clock generators use this to track supply noise.
func (c *Clock) SetPeriod(p Time) {
	if p == 0 {
		panic("sim: zero clock period")
	}
	c.period = p
}

// Cycle returns the number of rising edges seen so far.
func (c *Clock) Cycle() uint64 { return c.cycle.Load() }

// Sim returns the owning simulator.
func (c *Clock) Sim() *Simulator { return c.sim }

// Now returns the time of the clock's current rising edge. Inside a
// clock's edge it equals Simulator.Now in a sequential run; in a
// partition-parallel run it is the only correct simulated-time source
// for code executing in the clock's domain, because shards advance
// their local times independently.
func (c *Clock) Now() Time { return c.now }

// Lane returns the trace lane edge-local emissions should append to:
// the owning shard's lane during a partitioned run, nil (the recorder's
// default stream) otherwise.
func (c *Clock) Lane() *trace.Lane { return c.lane }

// Pause postpones the clock's next rising edge until at least t. Pausible
// bisynchronous FIFOs use this to stretch a receiver clock while a
// synchronization conflict window is open.
//
// Pause alone cannot express the sequential kernel's due-list freeze
// (an edge due at the instant the pause is issued still fires); callers
// that may pause a clock coincident with its own edge — the GALS FIFOs —
// must use CrossingPause, which carries the issuing instant.
func (c *Clock) Pause(until Time) {
	maxStore(&c.pausedUntil, uint64(until))
}

// maxStore raises a to at least v (monotonic CAS max).
func maxStore(a *atomic.Uint64, v uint64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// nextEdge returns the effective time of the next rising edge as the
// sequential kernel's due-list scan sees it: the scheduled edge, or the
// pause deadline when a pause covers it.
func (c *Clock) nextEdge() Time {
	next := c.next.Load()
	if pu := c.pausedUntil.Load(); pu > next {
		return Time(pu)
	}
	return Time(next)
}

// dueEdge returns the time of the next edge honouring pause immunity:
// an edge at pauseImmuneAt fires at its original instant even though a
// pause covers it, reproducing the sequential kernel's frozen due list
// without needing a global snapshot. The partition scheduler uses this;
// the sequential kernel's snapshot achieves the same thing structurally.
func (c *Clock) dueEdge() Time {
	next := c.next.Load()
	e := next
	if pu := c.pausedUntil.Load(); pu > e {
		e = pu
	}
	if im := c.pauseImmuneAt.Load(); im >= next && im < e {
		e = im
	}
	return Time(e)
}

// NextEdge returns the time of the clock's next scheduled rising edge,
// including the effect of any pending pause. Pausible-clocking models
// use it to test a crossing against the edge that will actually sample
// it, which a naive now-modulo-period phase test gets wrong as soon as
// the clock has been paused or carries a phase offset.
func (c *Clock) NextEdge() Time { return c.nextEdge() }

// CrossingPause implements the receiver-side half of a pausible clock
// crossing: called from an edge of another domain at instant now, it
// pauses c until `until` when c's next sampling edge falls inside the
// conflict window [now, until), and reports whether it did — the
// caller's cue to count the pause and emit its stall event.
//
// Sequentially this is exactly the old "if NextEdge() < until { Pause }"
// sequence. In a partition-parallel run it additionally
//
//   - waits until every shard that could issue an earlier-keyed pause on
//     c has advanced past the caller's edge key, so the pause-or-not
//     decision reads the same pausedUntil value a sequential run would
//     (the Engine's pause arbitration — the only cross-shard slow path);
//   - marks c's edge immune when the pause lands at the edge's own
//     instant, reproducing the sequential kernel's frozen due list.
//
// The fast path — no conflict — is two atomic loads and no locking:
// c's schedule can only move later while its shard is blocked, so a
// stale read errs toward entering the slow path, never toward skipping
// a pause.
func (c *Clock) CrossingPause(from *Clock, now, until Time) bool {
	if c.nextEdge() >= until {
		return false
	}
	if e := c.sim.engine; e != nil && from.shard != nil && c.shard != from.shard {
		e.arbitratePause(c, from, now)
	}
	// Decision re-read: in partitioned mode every earlier-keyed pause on
	// c has now been applied, so this is the sequential value.
	paused := c.nextEdge() < until
	if paused {
		if uint64(now) == c.dueEdge().asU64() {
			// The pause lands at c's own due instant: that edge was
			// already committed to fire (sequential due lists freeze
			// before edges run), so mark it immune before deferring
			// later ones.
			c.pauseImmuneAt.Store(uint64(now))
		}
		maxStore(&c.pausedUntil, uint64(until))
	}
	return paused
}

// asU64 is a readability helper for packing times into atomics.
func (t Time) asU64() uint64 { return uint64(t) }

// AtDrive registers f to run in the drive phase of every edge.
func (c *Clock) AtDrive(f func()) { c.AtDriveNamed("", f) }

// AtDriveNamed registers a named drive-phase hook.
func (c *Clock) AtDriveNamed(name string, f func()) {
	c.drives = append(c.drives, namedHook{name: name, fn: f})
}

// AtResolve registers f in the combinational resolve phase. f must return
// true if it changed any visible signal; the kernel iterates all resolvers
// until a full pass makes no changes.
func (c *Clock) AtResolve(f func() bool) { c.AtResolveNamed("", f) }

// AtResolveNamed registers a named resolve-phase hook.
func (c *Clock) AtResolveNamed(name string, f func() bool) {
	c.resolves = append(c.resolves, namedResolver{name: name, fn: f})
}

// AtCommit registers f to run in the commit (state-latch) phase.
func (c *Clock) AtCommit(f func()) { c.AtCommitNamed("", f) }

// AtCommitNamed registers a named commit-phase hook.
func (c *Clock) AtCommitNamed(name string, f func()) {
	c.commits = append(c.commits, namedHook{name: name, fn: f})
}

// AtMonitor registers an observation-only hook that runs after commit.
func (c *Clock) AtMonitor(f func()) { c.AtMonitorNamed("", f) }

// AtMonitorNamed registers a named monitor-phase hook.
func (c *Clock) AtMonitorNamed(name string, f func()) {
	c.monitors = append(c.monitors, namedHook{name: name, fn: f})
}

// ProcessInfo describes one registered process or hook for introspection.
type ProcessInfo struct {
	Clock string // owning clock's name
	Phase string // "thread", "drive", "resolve", "commit", or "monitor"
	Name  string // process name; "" for an anonymous hook
}

// Processes returns every process and hook registered on the clock, in
// phase then registration order.
func (c *Clock) Processes() []ProcessInfo {
	var out []ProcessInfo
	for _, th := range c.threads {
		out = append(out, ProcessInfo{Clock: c.name, Phase: "thread", Name: th.name})
	}
	for _, h := range c.drives {
		out = append(out, ProcessInfo{Clock: c.name, Phase: "drive", Name: h.name})
	}
	for _, h := range c.resolves {
		out = append(out, ProcessInfo{Clock: c.name, Phase: "resolve", Name: h.name})
	}
	for _, h := range c.commits {
		out = append(out, ProcessInfo{Clock: c.name, Phase: "commit", Name: h.name})
	}
	for _, h := range c.monitors {
		out = append(out, ProcessInfo{Clock: c.name, Phase: "monitor", Name: h.name})
	}
	return out
}

// Processes returns every process and hook in the simulation across all
// clocks, in clock registration order.
func (s *Simulator) Processes() []ProcessInfo {
	var out []ProcessInfo
	for _, c := range s.clocks {
		out = append(out, c.Processes()...)
	}
	return out
}

// Thread is the handle a coroutine process uses to synchronize with its
// clock. All methods must be called only from the goroutine running the
// thread body.
type Thread struct {
	t *thread
}

type thread struct {
	name     string
	clock    *Clock
	resume   chan struct{}
	yield    chan struct{}
	finished bool
	started  bool
	body     func(*Thread)

	// Parking state, owned by the kernel while the thread is yielded. A
	// parked thread is skipped — no goroutine handoff — until its
	// condition holds at its scheduling slot.
	parkN    uint64      // countdown parking (WaitN); resumes when it hits 0
	parkPred func() bool // predicate parking (WaitFor); nil when not parked
}

// Spawn registers a coroutine process on clock c. The body starts running
// at the first rising edge and is resumed once per edge after each Wait.
// When the body returns the thread retires.
func (c *Clock) Spawn(name string, body func(*Thread)) {
	th := &thread{
		name:   name,
		clock:  c,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		body:   body,
	}
	c.threads = append(c.threads, th)
}

// Wait suspends the thread until the next rising edge of its clock.
func (t *Thread) Wait() {
	t.t.yield <- struct{}{}
	<-t.t.resume
}

// WaitN suspends the thread for n rising edges. The kernel counts the
// edges down without resuming the goroutine, so a long WaitN costs one
// handoff instead of n.
func (t *Thread) WaitN(n int) {
	if n <= 0 {
		return
	}
	t.t.parkN = uint64(n)
	t.Wait()
}

// WaitFor parks the thread until pred holds. The kernel evaluates pred at
// the thread's scheduling slot on each subsequent edge and resumes the
// goroutine only when it returns true, skipping the handoff entirely on
// idle edges. Like Wait, it always suspends for at least one edge, so
//
//	th.WaitFor(ready)
//
// observes exactly the same cycle as the polling loop
//
//	for { th.Wait(); if ready() { break } }
//
// pred runs on the kernel goroutine between thread resumptions; it must
// only read simulation state and must not panic.
func (t *Thread) WaitFor(pred func() bool) {
	if pred == nil {
		panic("sim: WaitFor(nil) by thread " + t.t.name)
	}
	t.t.parkPred = pred
	t.Wait()
}

// Clock returns the clock the thread is bound to.
func (t *Thread) Clock() *Clock { return t.t.clock }

// Cycle returns the current cycle count of the thread's clock.
func (t *Thread) Cycle() uint64 { return t.t.clock.cycle.Load() }

// Sim returns the owning simulator.
func (t *Thread) Sim() *Simulator { return t.t.clock.sim }

// Name returns the thread name.
func (t *Thread) Name() string { return t.t.name }

func (th *thread) start() {
	th.started = true
	go func() {
		defer func() {
			if r := recover(); r != nil {
				c := th.clock
				c.sim.recordPanic(packKey(c.now, c.ord),
					fmt.Errorf("sim: thread %q panicked: %v", th.name, r))
			}
			th.finished = true
			th.yield <- struct{}{}
		}()
		<-th.resume
		th.body(&Thread{t: th})
	}()
}

// recordPanic stops the simulation and merges err under the panic mutex,
// so racing shards keep the deterministic earliest-edge panic.
func (s *Simulator) recordPanic(key uint64, err error) {
	s.errMu.Lock()
	s.setErrAt(key, err)
	s.errMu.Unlock()
	s.stopped.Store(true)
	s.aborted.Store(true)
}

// packKey packs an edge instant and its clock's name-order index into one
// comparable word: (time << 8) | ord. Comparing packed keys reproduces the
// sequential kernel's (time, then clock name) edge ordering in a single
// atomic load, which is what the partition protocol runs on. Times within
// 8 bits of saturation (only Infinity in practice) collapse to MaxUint64.
func packKey(t Time, ord int) uint64 {
	if t >= Time(math.MaxUint64>>8) {
		return math.MaxUint64
	}
	return uint64(t)<<8 | uint64(ord)&0xff
}

// runEdgeAt executes one full rising edge of c at instant t. The caller
// (sequential step loop or partition shard) guarantees t is the edge the
// global (time, clock-name) order fires next among c's coupled clocks.
func (c *Clock) runEdgeAt(t Time) {
	c.now = t
	c.cycle.Add(1)
	if c.lane != nil {
		c.lane.BeginEdge(uint64(t), uint32(c.ord))
	}

	// Phase 1: threads, in registration order. Parked threads are
	// serviced at their slot without a goroutine handoff.
	for _, th := range c.threads {
		if th.finished {
			continue
		}
		if !th.started {
			th.start()
		} else if th.parkN > 0 {
			if th.parkN--; th.parkN > 0 {
				continue
			}
		} else if th.parkPred != nil {
			if !th.parkPred() {
				continue
			}
			th.parkPred = nil
		}
		th.resume <- struct{}{}
		<-th.yield
	}

	// Phase 2: drive.
	for i := range c.drives {
		c.drives[i].fn()
	}

	// Phase 3: combinational resolve to fixpoint.
	if len(c.resolves) > 0 {
		limit := len(c.resolves)*len(c.resolves) + 16
		for iter := 0; ; iter++ {
			changed := false
			for i := range c.resolves {
				if c.resolves[i].fn() {
					changed = true
				}
			}
			if !changed {
				break
			}
			if iter > limit {
				panic(fmt.Sprintf("sim: combinational loop on clock %q did not converge", c.name))
			}
		}
	}

	// Phase 4: commit.
	for i := range c.commits {
		c.commits[i].fn()
	}

	// Phase 5: monitors.
	for i := range c.monitors {
		c.monitors[i].fn()
	}

	c.next.Store(uint64(t + c.period))
	if pu := c.pausedUntil.Load(); pu != 0 && Time(pu) <= t {
		c.pausedUntil.Store(0)
	}
	// Any immunity was for this edge; the next one starts unprotected.
	c.pauseImmuneAt.Store(uint64(Infinity))
}

// nextEventTime returns the earliest pending edge time across all clocks
// (Infinity when there are none). Run and Step share this scan.
func (s *Simulator) nextEventTime() Time {
	t := Infinity
	for _, c := range s.clocks {
		if e := c.nextEdge(); e < t {
			t = e
		}
	}
	return t
}

// stepAt fires every clock whose edge is due at t, in stable name order
// for reproducibility independent of registration order.
func (s *Simulator) stepAt(t Time) bool {
	s.now = t
	if s.orderedDirty {
		s.ordered = append(s.ordered[:0], s.clocks...)
		sort.Slice(s.ordered, func(i, j int) bool { return s.ordered[i].name < s.ordered[j].name })
		s.orderedDirty = false
	}
	// The due set is fixed before any edge runs: a clock paused by
	// another clock's edge at t still fires this step (its postponement
	// affects the following edge), matching pausible-clocking semantics.
	due := s.due[:0]
	for _, c := range s.ordered {
		if c.nextEdge() == t {
			due = append(due, c)
		}
	}
	s.due = due
	for _, c := range due {
		if s.stopped.Load() {
			break
		}
		c.runEdgeAt(t)
	}
	return !s.stopped.Load()
}

// Step advances to the next clock edge (or coincident group of edges) and
// processes it. It returns false when there are no clocks or the simulator
// has stopped.
func (s *Simulator) Step() bool {
	if s.stopped.Load() || len(s.clocks) == 0 {
		return false
	}
	if len(s.clocks) == 1 {
		// Single-clock fast path: no scan, no due list.
		c := s.clocks[0]
		s.now = c.nextEdge()
		c.runEdgeAt(s.now)
		return !s.stopped.Load()
	}
	t := s.nextEventTime()
	if t == Infinity {
		return false
	}
	return s.stepAt(t)
}

// Run advances the simulation until maxTime (exclusive) or Stop.
func (s *Simulator) Run(maxTime Time) {
	if len(s.clocks) == 1 {
		// Single-clock fast path: one edge-time comparison per step.
		c := s.clocks[0]
		for !s.stopped.Load() {
			t := c.nextEdge()
			if t >= maxTime {
				return
			}
			s.now = t
			c.runEdgeAt(t)
		}
		return
	}
	for !s.stopped.Load() {
		t := s.nextEventTime()
		if t >= maxTime {
			return
		}
		if !s.stepAt(t) {
			return
		}
	}
}

// RunCycles runs until clock c has advanced n more rising edges, or Stop.
func (s *Simulator) RunCycles(c *Clock, n uint64) {
	target := c.cycle.Load() + n
	for c.cycle.Load() < target && s.Step() {
	}
}

// Drain retires all threads by resuming them until they finish, bounded by
// limit edges. It is used by tests to shut a simulation down cleanly; a
// thread that never returns is simply abandoned when the test ends.
//
// Draining steps past a pending Stop, but the stop request is not lost: a
// simulator stopped before (or during) Drain is still stopped when it
// returns.
func (s *Simulator) Drain(limit uint64) {
	wasStopped := s.stopped.Load()
	defer func() {
		if wasStopped {
			s.stopped.Store(true)
		}
	}()
	for i := uint64(0); i < limit; i++ {
		alive := false
		for _, c := range s.clocks {
			for _, th := range c.threads {
				if th.started && !th.finished {
					alive = true
				}
			}
		}
		if !alive {
			return
		}
		s.stopped.Store(false)
		if !s.Step() {
			return
		}
	}
}
