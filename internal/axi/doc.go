// Package axi implements the MatchLib AXI components (Table 2): typed
// read/write address, data and response channels in the style of AXI4,
// master and slave interface bundles, a slave adapter over a memory
// array, an arbitrated interconnect, and bridges between AXI and simple
// request/response LI channels.
//
// The model follows the five-channel AXI split — AW, W, AR, R, B — with
// bursts of consecutive beats (INCR). Each channel is an ordinary
// latency-insensitive channel from internal/connections, so AXI traffic
// composes with every channel mode, stall injection, and retiming option.
package axi
