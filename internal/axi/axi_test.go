package axi

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/connections"
	"repro/internal/sim"
)

func TestSingleMasterMemSlave(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	m := NewMaster()
	slv := NewMemSlave(clk, "mem", 256)
	Connect(clk, "bus", 2, m, slv.Port)

	clk.Spawn("master", func(th *sim.Thread) {
		if !m.WriteBurst(th, 1, 16, []uint64{10, 20, 30, 40}) {
			t.Error("write burst failed")
		}
		data, ok := m.ReadBurst(th, 2, 16, 4)
		if !ok {
			t.Error("read burst failed")
		}
		for i, want := range []uint64{10, 20, 30, 40} {
			if data[i] != want {
				t.Errorf("beat %d = %d, want %d", i, data[i], want)
			}
		}
		// Out-of-range access reports not-OK.
		if _, ok := m.ReadBurst(th, 3, 1000, 1); ok {
			t.Error("out-of-range read reported OK")
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestInterconnectAddressDecode(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	ic := NewInterconnect(clk, "ic", 1, []Region{
		{Base: 0x000, Size: 0x100, Slave: 0},
		{Base: 0x100, Size: 0x100, Slave: 1},
	})
	m := NewMaster()
	Connect(clk, "m0", 2, m, ic.MasterPorts[0])
	s0 := NewMemSlave(clk, "s0", 0x100)
	s1 := NewMemSlave(clk, "s1", 0x100)
	Connect(clk, "b0", 2, ic.SlavePorts[0], s0.Port)
	Connect(clk, "b1", 2, ic.SlavePorts[1], s1.Port)

	clk.Spawn("master", func(th *sim.Thread) {
		m.WriteBurst(th, 1, 0x010, []uint64{111})
		m.WriteBurst(th, 2, 0x110, []uint64{222})
		a, _ := m.ReadBurst(th, 3, 0x010, 1)
		b, _ := m.ReadBurst(th, 4, 0x110, 1)
		if a[0] != 111 || b[0] != 222 {
			t.Errorf("decode wrong: got %d,%d", a[0], b[0])
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	// Address translation: slave 1 must have the data at local 0x10.
	if got := s1.Mem.Read(0x10); got != 222 {
		t.Fatalf("slave1 local 0x10 = %d, want 222", got)
	}
}

func TestInterconnectMultiMasterContention(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	const nm = 3
	ic := NewInterconnect(clk, "ic", nm, []Region{{Base: 0, Size: 1024, Slave: 0}})
	slv := NewMemSlave(clk, "mem", 1024)
	Connect(clk, "bus", 2, ic.SlavePorts[0], slv.Port)

	done := 0
	for i := 0; i < nm; i++ {
		i := i
		m := NewMaster()
		Connect(clk, fmt.Sprintf("m%d", i), 2, m, ic.MasterPorts[i])
		clk.Spawn(fmt.Sprintf("master%d", i), func(th *sim.Thread) {
			base := i * 64
			for k := 0; k < 20; k++ {
				if !m.WriteBurst(th, i, base+k, []uint64{uint64(i*1000 + k)}) {
					t.Errorf("master %d write %d failed", i, k)
				}
				th.Wait()
			}
			for k := 0; k < 20; k++ {
				data, ok := m.ReadBurst(th, i, base+k, 1)
				if !ok || data[0] != uint64(i*1000+k) {
					t.Errorf("master %d read %d = %v,%v", i, k, data, ok)
				}
				th.Wait()
			}
			done++
			if done == nm {
				th.Sim().Stop()
			}
			th.Wait()
		})
	}
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if done != nm {
		t.Fatalf("%d/%d masters completed", done, nm)
	}
}

func TestBridge(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	br := NewBridge(clk, "br", 7)
	slv := NewMemSlave(clk, "mem", 64)
	Connect(clk, "bus", 2, br.Port, slv.Port)

	reqOut := connections.NewOut[Req]()
	rspIn := connections.NewIn[Resp]()
	connections.Buffer(clk, "req", 2, reqOut, br.Req)
	connections.Buffer(clk, "rsp", 2, br.Rsp, rspIn)

	clk.Spawn("driver", func(th *sim.Thread) {
		reqOut.Push(th, Req{Write: true, Addr: 5, Data: 99})
		if r := rspIn.Pop(th); !r.OK {
			t.Error("bridge write failed")
		}
		reqOut.Push(th, Req{Addr: 5})
		if r := rspIn.Pop(th); !r.OK || r.Data != 99 {
			t.Errorf("bridge read = %+v", r)
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

// Property: randomized master programs against an interconnect with
// disjoint address windows behave like flat per-master memories, under
// stall injection.
func TestInterconnectRandomProperty(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for iter := 0; iter < 3; iter++ {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		nm := 2 + r.Intn(2)
		ic := NewInterconnect(clk, "ic", nm, []Region{
			{Base: 0, Size: 256, Slave: 0},
			{Base: 256, Size: 256, Slave: 1},
		})
		for j, slv := range []*MemSlave{NewMemSlave(clk, "s0", 256), NewMemSlave(clk, "s1", 256)} {
			Connect(clk, fmt.Sprintf("b%d", j), 2, ic.SlavePorts[j], slv.Port,
				connections.WithStall(0.2, 0.2, int64(iter)))
		}
		done := 0
		for i := 0; i < nm; i++ {
			i := i
			m := NewMaster()
			Connect(clk, fmt.Sprintf("m%d", i), 2, m, ic.MasterPorts[i])
			// Master-private stripe across both slaves.
			model := map[int]uint64{}
			rr := rand.New(rand.NewSource(int64(iter*10 + i)))
			clk.Spawn(fmt.Sprintf("master%d", i), func(th *sim.Thread) {
				for k := 0; k < 30; k++ {
					addr := rr.Intn(512/nm) + i*(512/nm)
					if rr.Intn(2) == 0 {
						v := rr.Uint64()
						if !m.WriteBurst(th, i, addr, []uint64{v}) {
							t.Errorf("write failed at %d", addr)
						}
						model[addr] = v
					} else {
						data, ok := m.ReadBurst(th, i, addr, 1)
						if !ok {
							t.Errorf("read failed at %d", addr)
						} else if want, seen := model[addr]; seen && data[0] != want {
							t.Errorf("master %d addr %d = %d, want %d", i, addr, data[0], want)
						}
					}
					th.Wait()
				}
				done++
				if done == nm {
					th.Sim().Stop()
				}
				th.Wait()
			})
		}
		s.Run(sim.Infinity - 1)
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		if done != nm {
			t.Fatalf("iter %d: %d/%d masters completed", iter, done, nm)
		}
	}
}
