package axi

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/matchlib"
	"repro/internal/sim"
)

// WriteAddr is one AW-channel beat: a write burst announcement.
type WriteAddr struct {
	ID   int
	Addr int
	Len  int // beats in the burst (1..)
}

// WriteData is one W-channel beat.
type WriteData struct {
	Data uint64
	Last bool
}

// WriteResp is one B-channel beat.
type WriteResp struct {
	ID int
	OK bool
}

// ReadAddr is one AR-channel beat: a read burst request.
type ReadAddr struct {
	ID   int
	Addr int
	Len  int
}

// ReadData is one R-channel beat.
type ReadData struct {
	ID   int
	Data uint64
	Last bool
	OK   bool
}

// Master is the port bundle a bus master holds.
type Master struct {
	AW *connections.Out[WriteAddr]
	W  *connections.Out[WriteData]
	B  *connections.In[WriteResp]
	AR *connections.Out[ReadAddr]
	R  *connections.In[ReadData]
}

// Slave is the port bundle a bus slave holds.
type Slave struct {
	AW *connections.In[WriteAddr]
	W  *connections.In[WriteData]
	B  *connections.Out[WriteResp]
	AR *connections.In[ReadAddr]
	R  *connections.Out[ReadData]
}

// NewMaster returns an unbound master bundle.
func NewMaster() *Master {
	return &Master{
		AW: connections.NewOut[WriteAddr](),
		W:  connections.NewOut[WriteData](),
		B:  connections.NewIn[WriteResp](),
		AR: connections.NewOut[ReadAddr](),
		R:  connections.NewIn[ReadData](),
	}
}

// NewSlave returns an unbound slave bundle.
func NewSlave() *Slave {
	return &Slave{
		AW: connections.NewIn[WriteAddr](),
		W:  connections.NewIn[WriteData](),
		B:  connections.NewOut[WriteResp](),
		AR: connections.NewIn[ReadAddr](),
		R:  connections.NewOut[ReadData](),
	}
}

// Connect binds a master bundle to a slave bundle with Buffer channels of
// the given depth on all five AXI channels.
func Connect(clk *sim.Clock, name string, depth int, m *Master, s *Slave, opts ...connections.Option) {
	connections.Buffer(clk, name+"/aw", depth, m.AW, s.AW, opts...)
	connections.Buffer(clk, name+"/w", depth, m.W, s.W, opts...)
	connections.Buffer(clk, name+"/b", depth, s.B, m.B, opts...)
	connections.Buffer(clk, name+"/ar", depth, m.AR, s.AR, opts...)
	connections.Buffer(clk, name+"/r", depth, s.R, m.R, opts...)
}

// MemSlave serves AXI bursts from a word-addressed memory array.
type MemSlave struct {
	Port *Slave
	Mem  *matchlib.MemArray[uint64]
}

// NewMemSlave builds a memory-backed slave of sizeWords.
func NewMemSlave(clk *sim.Clock, name string, sizeWords int) *MemSlave {
	return NewMemSlaveBacked(clk, name, matchlib.NewMemArray[uint64](sizeWords, 1))
}

// NewMemSlaveBacked builds a slave over an existing memory array, giving
// the array a second (AXI) port — how the SoC's global memory exposes a
// control-plane view to the RISC-V besides its NoC data plane.
func NewMemSlaveBacked(clk *sim.Clock, name string, mem *matchlib.MemArray[uint64]) *MemSlave {
	ms := &MemSlave{Port: NewSlave(), Mem: mem}
	// Write engine: one AW, then its W beats, then one B.
	clk.Spawn(name+"/wr", func(th *sim.Thread) {
		for {
			aw := ms.Port.AW.Pop(th)
			ok := true
			for i := 0; i < aw.Len; i++ {
				wd := ms.Port.W.Pop(th)
				addr := aw.Addr + i
				if addr < 0 || addr >= ms.Mem.Size() {
					ok = false
				} else {
					ms.Mem.Write(addr, wd.Data)
				}
				if wd.Last != (i == aw.Len-1) {
					panic(fmt.Sprintf("axi: %s burst length mismatch (beat %d of %d, last=%v)", name, i+1, aw.Len, wd.Last))
				}
				th.Wait()
			}
			ms.Port.B.Push(th, WriteResp{ID: aw.ID, OK: ok})
			th.Wait()
		}
	})
	// Read engine: one AR, then its R beats.
	clk.Spawn(name+"/rd", func(th *sim.Thread) {
		for {
			ar := ms.Port.AR.Pop(th)
			for i := 0; i < ar.Len; i++ {
				addr := ar.Addr + i
				rd := ReadData{ID: ar.ID, Last: i == ar.Len-1}
				if addr >= 0 && addr < ms.Mem.Size() {
					rd.Data = ms.Mem.Read(addr)
					rd.OK = true
				}
				ms.Port.R.Push(th, rd)
				th.Wait()
			}
		}
	})
	return ms
}

// WriteBurst issues a complete write transaction from thread context and
// waits for the response. It is the master-side convenience used by
// testbenches and the RISC-V controller.
func (m *Master) WriteBurst(th *sim.Thread, id, addr int, data []uint64) bool {
	m.AW.Push(th, WriteAddr{ID: id, Addr: addr, Len: len(data)})
	for i, d := range data {
		m.W.Push(th, WriteData{Data: d, Last: i == len(data)-1})
		th.Wait()
	}
	for {
		b := m.B.Pop(th)
		if b.ID == id {
			return b.OK
		}
	}
}

// ReadBurst issues a complete read transaction and collects the beats.
func (m *Master) ReadBurst(th *sim.Thread, id, addr, n int) ([]uint64, bool) {
	m.AR.Push(th, ReadAddr{ID: id, Addr: addr, Len: n})
	data := make([]uint64, 0, n)
	ok := true
	for {
		r := m.R.Pop(th)
		if r.ID != id {
			continue
		}
		data = append(data, r.Data)
		ok = ok && r.OK
		if r.Last {
			return data, ok
		}
		th.Wait()
	}
}
