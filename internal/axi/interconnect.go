package axi

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/matchlib"
	"repro/internal/sim"
)

// Region maps an address window onto a slave. Addresses are translated to
// slave-local (zero-based) addresses when forwarded.
type Region struct {
	Base, Size int
	Slave      int
}

// Interconnect is an N-master, M-slave AXI crossbar with address-map
// decoding, per-slave round-robin arbitration, and in-order response
// routing back to the originating master.
type Interconnect struct {
	// MasterPorts[i] is the slave-side bundle master i connects to.
	MasterPorts []*Slave
	// SlavePorts[j] is the master-side bundle driving slave j.
	SlavePorts []*Master

	regions []Region
}

// NewInterconnect builds the crossbar for nMasters masters and the slaves
// named by the address map.
func NewInterconnect(clk *sim.Clock, name string, nMasters int, regions []Region) *Interconnect {
	nSlaves := 0
	for _, r := range regions {
		if r.Slave >= nSlaves {
			nSlaves = r.Slave + 1
		}
	}
	ic := &Interconnect{regions: regions}
	for i := 0; i < nMasters; i++ {
		ic.MasterPorts = append(ic.MasterPorts, NewSlave())
	}
	for j := 0; j < nSlaves; j++ {
		ic.SlavePorts = append(ic.SlavePorts, NewMaster())
	}
	for j := 0; j < nSlaves; j++ {
		j := j
		wArb := matchlib.NewArbiter(nMasters)
		rArb := matchlib.NewArbiter(nMasters)
		// Origin queues: which master each in-flight transaction on this
		// slave belongs to, in issue order (slaves respond in order).
		worig := matchlib.NewFIFO[wOrigin](16)
		rorig := matchlib.NewFIFO[wOrigin](16)

		clk.Spawn(fmt.Sprintf("%s.s%d.wr", name, j), func(th *sim.Thread) {
			for {
				m := ic.pickPending(wArb, j, true)
				if m < 0 || worig.Full() {
					th.Wait()
					continue
				}
				mp := ic.MasterPorts[m]
				aw, _ := mp.AW.PopNB(th)
				local, ok := ic.translate(aw.Addr, aw.Len, j)
				if !ok {
					panic(fmt.Sprintf("axi: write burst at %#x crosses region boundary", aw.Addr))
				}
				worig.Push(wOrigin{master: m, id: aw.ID})
				ic.SlavePorts[j].AW.Push(th, WriteAddr{ID: j, Addr: local, Len: aw.Len})
				for i := 0; i < aw.Len; i++ {
					wd := mp.W.Pop(th)
					ic.SlavePorts[j].W.Push(th, wd)
					th.Wait()
				}
			}
		})
		clk.Spawn(fmt.Sprintf("%s.s%d.wrsp", name, j), func(th *sim.Thread) {
			for {
				b := ic.SlavePorts[j].B.Pop(th)
				o := worig.Pop()
				ic.MasterPorts[o.master].B.Push(th, WriteResp{ID: o.id, OK: b.OK})
				th.Wait()
			}
		})
		clk.Spawn(fmt.Sprintf("%s.s%d.rd", name, j), func(th *sim.Thread) {
			for {
				m := ic.pickPending(rArb, j, false)
				if m < 0 || rorig.Full() {
					th.Wait()
					continue
				}
				mp := ic.MasterPorts[m]
				ar, _ := mp.AR.PopNB(th)
				local, ok := ic.translate(ar.Addr, ar.Len, j)
				if !ok {
					panic(fmt.Sprintf("axi: read burst at %#x crosses region boundary", ar.Addr))
				}
				rorig.Push(wOrigin{master: m, id: ar.ID})
				ic.SlavePorts[j].AR.Push(th, ReadAddr{ID: j, Addr: local, Len: ar.Len})
				th.Wait()
			}
		})
		clk.Spawn(fmt.Sprintf("%s.s%d.rrsp", name, j), func(th *sim.Thread) {
			for {
				r := ic.SlavePorts[j].R.Pop(th)
				o := rorig.Peek()
				ic.MasterPorts[o.master].R.Push(th, ReadData{ID: o.id, Data: r.Data, Last: r.Last, OK: r.OK})
				if r.Last {
					rorig.Pop()
				}
				th.Wait()
			}
		})
	}
	return ic
}

type wOrigin struct {
	master, id int
}

// pickPending round-robin selects a master whose AW (write) or AR (read)
// head decodes to slave j, or -1.
func (ic *Interconnect) pickPending(arb *matchlib.Arbiter, j int, write bool) int {
	var req uint64
	for m, mp := range ic.MasterPorts {
		if write {
			if aw, ok := mp.AW.Peek(); ok && ic.slaveOf(aw.Addr) == j {
				req |= 1 << uint(m)
			}
		} else {
			if ar, ok := mp.AR.Peek(); ok && ic.slaveOf(ar.Addr) == j {
				req |= 1 << uint(m)
			}
		}
	}
	return arb.Pick(req)
}

func (ic *Interconnect) slaveOf(addr int) int {
	for _, r := range ic.regions {
		if addr >= r.Base && addr < r.Base+r.Size {
			return r.Slave
		}
	}
	return -1
}

// translate converts addr to slave-local form and checks the burst stays
// inside one region.
func (ic *Interconnect) translate(addr, n, j int) (int, bool) {
	for _, r := range ic.regions {
		if r.Slave == j && addr >= r.Base && addr < r.Base+r.Size {
			if addr+n > r.Base+r.Size {
				return 0, false
			}
			return addr - r.Base, true
		}
	}
	return 0, false
}

// Req is a simple single-word LI request, the non-AXI side of the bridge.
type Req struct {
	Write bool
	Addr  int
	Data  uint64
}

// Resp answers a Req.
type Resp struct {
	Data uint64
	OK   bool
}

// Bridge adapts a simple request/response LI channel pair to an AXI
// master bundle — the "bridges for AXI interconnect" entry of Table 2.
type Bridge struct {
	Req  *connections.In[Req]
	Rsp  *connections.Out[Resp]
	Port *Master
}

// NewBridge builds a bridge issuing single-beat AXI transactions with the
// given transaction ID.
func NewBridge(clk *sim.Clock, name string, id int) *Bridge {
	b := &Bridge{
		Req:  connections.NewIn[Req](),
		Rsp:  connections.NewOut[Resp](),
		Port: NewMaster(),
	}
	clk.Spawn(name+"/bridge", func(th *sim.Thread) {
		for {
			req := b.Req.Pop(th)
			if req.Write {
				ok := b.Port.WriteBurst(th, id, req.Addr, []uint64{req.Data})
				b.Rsp.Push(th, Resp{OK: ok})
			} else {
				data, ok := b.Port.ReadBurst(th, id, req.Addr, 1)
				b.Rsp.Push(th, Resp{Data: data[0], OK: ok})
			}
			th.Wait()
		}
	})
	return b
}
