package hls

import "fmt"

// This file captures the datapath designs used by the paper-reproduction
// experiments: the §2.4 crossbar case study in both codings, and the
// "range of datapath modules and small functional units" behind the ±10%
// QoR claim of §2.2.

// CrossbarDstLoopDesign is the efficient coding: for each output, read
// in[src[dst]] — one balanced select-mux tree per output.
func CrossbarDstLoopDesign(lanes, width int) *Design {
	b := NewBuilder(fmt.Sprintf("xbar_dst_%dx%d", lanes, width))
	in := b.InputArray("in", width, lanes)
	sel := b.InputArray("src", log2ceil(lanes), lanes)
	for dst := 0; dst < lanes; dst++ {
		b.Output(fmt.Sprintf("out%d", dst), b.ReadIdx(in, sel[dst]))
	}
	return b.Build()
}

// CrossbarSrcLoopDesign is the naive coding: for each input, write
// out[dst[src]] = in[src] — which unrolls into a serial priority-mux
// chain with a comparator per (src, dst) pair, the structure behind the
// paper's ~25% area penalty and slower HLS runs.
func CrossbarSrcLoopDesign(lanes, width int) *Design {
	b := NewBuilder(fmt.Sprintf("xbar_src_%dx%d", lanes, width))
	in := b.InputArray("in", width, lanes)
	dst := b.InputArray("dst", log2ceil(lanes), lanes)
	outs := make([]Val, lanes)
	zero := b.Const(0, width)
	for j := range outs {
		outs[j] = zero
	}
	for src := 0; src < lanes; src++ {
		b.WriteIdx(outs, dst[src], in[src])
	}
	for j, o := range outs {
		b.Output(fmt.Sprintf("out%d", j), o)
	}
	return b.Build()
}

// MACDesign is a multiply-accumulate: out = a*b + acc.
func MACDesign(width int) *Design {
	b := NewBuilder(fmt.Sprintf("mac_%d", width))
	a := b.Input("a", width)
	x := b.Input("b", width)
	acc := b.Input("acc", width)
	b.Output("out", b.Add(b.Mul(a, x), acc))
	return b.Build()
}

// FIRDesign is a direct-form FIR filter with runtime coefficients.
func FIRDesign(taps, width int) *Design {
	b := NewBuilder(fmt.Sprintf("fir_%dt_%d", taps, width))
	xs := b.InputArray("x", width, taps)
	hs := b.InputArray("h", width, taps)
	prods := make([]Val, taps)
	for i := range prods {
		prods[i] = b.Mul(xs[i], hs[i])
	}
	b.Output("y", b.ReduceAdd(prods))
	return b.Build()
}

// AdderTreeDesign sums n inputs with a balanced tree.
func AdderTreeDesign(n, width int) *Design {
	b := NewBuilder(fmt.Sprintf("addtree_%dx%d", n, width))
	xs := b.InputArray("x", width, n)
	b.Output("sum", b.ReduceAdd(xs))
	return b.Build()
}

// ALUDesign is an 8-function ALU selected by a 3-bit opcode.
func ALUDesign(width int) *Design {
	b := NewBuilder(fmt.Sprintf("alu_%d", width))
	a := b.Input("a", width)
	x := b.Input("b", width)
	op := b.Input("op", 3)
	fns := []Val{
		b.Add(a, x), b.Sub(a, x), b.And(a, x), b.Or(a, x),
		b.Xor(a, x), b.Shl(a, 1), b.Shr(a, 1), b.Not(a),
	}
	b.Output("out", b.ReadIdx(fns, op))
	return b.Build()
}

// DecoderDesign converts a binary index to a one-hot vector.
func DecoderDesign(n int) *Design {
	b := NewBuilder(fmt.Sprintf("decoder_%d", n))
	idx := b.Input("idx", log2ceil(n))
	bits := make([]Val, n)
	for i := range bits {
		bits[i] = b.EqConst(idx, uint64(i))
	}
	out := bits[0]
	for i := 1; i < n; i++ {
		out = b.Concat(out, bits[i])
	}
	b.Output("onehot", out)
	return b.Build()
}

// EncoderDesign converts a one-hot vector to a binary index.
func EncoderDesign(n int) *Design {
	b := NewBuilder(fmt.Sprintf("encoder_%d", n))
	oh := b.Input("onehot", n)
	w := log2ceil(n)
	if w == 0 {
		w = 1
	}
	idx := b.Const(0, w)
	for i := 1; i < n; i++ {
		hit := b.Slice(oh, i, 1)
		idx = b.Mux(hit, b.Const(uint64(i), w), idx)
	}
	b.Output("idx", idx)
	return b.Build()
}

// PriorityArbiterDesign grants the lowest-indexed requester (one-hot).
func PriorityArbiterDesign(n int) *Design {
	b := NewBuilder(fmt.Sprintf("priarb_%d", n))
	req := b.Input("req", n)
	var blocked Val // OR of lower requests
	grants := make([]Val, n)
	for i := 0; i < n; i++ {
		r := b.Slice(req, i, 1)
		if i == 0 {
			grants[i] = r
			blocked = r
		} else {
			grants[i] = b.And(r, b.Not(blocked))
			blocked = b.Or(blocked, r)
		}
	}
	out := grants[0]
	for i := 1; i < n; i++ {
		out = b.Concat(out, grants[i])
	}
	b.Output("grant", out)
	return b.Build()
}

// MaxTreeDesign returns the maximum of n unsigned inputs.
func MaxTreeDesign(n, width int) *Design {
	b := NewBuilder(fmt.Sprintf("maxtree_%dx%d", n, width))
	layer := b.InputArray("x", width, n)
	for len(layer) > 1 {
		var next []Val
		for i := 0; i < len(layer); i += 2 {
			if i+1 < len(layer) {
				lt := b.Lt(layer[i], layer[i+1])
				next = append(next, b.Mux(lt, layer[i+1], layer[i]))
			} else {
				next = append(next, layer[i])
			}
		}
		layer = next
	}
	b.Output("max", layer[0])
	return b.Build()
}

// PopcountDesign counts set bits of an n-bit input.
func PopcountDesign(n int) *Design {
	b := NewBuilder(fmt.Sprintf("popcount_%d", n))
	x := b.Input("x", n)
	w := log2ceil(n+1) + 1
	bits := make([]Val, n)
	for i := range bits {
		bits[i] = b.ZExt(b.Slice(x, i, 1), w)
	}
	b.Output("count", b.ReduceAdd(bits))
	return b.Build()
}
