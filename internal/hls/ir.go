package hls

import "fmt"

// OpKind enumerates dataflow operations. All values are unsigned words of
// at most 64 bits; arithmetic wraps at the operation width.
type OpKind int

// Operation kinds.
const (
	OpInput OpKind = iota
	OpOutput
	OpConst
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShlC // shift left by constant Amount
	OpShrC // shift right by constant Amount
	OpEq   // 1-bit result
	OpLt   // unsigned less-than, 1-bit result
	OpMux  // operands: sel(1), a, b → sel ? a : b
	OpSlice
	OpZExt
	OpConcat // operands: lo, hi
)

var opNames = map[OpKind]string{
	OpInput: "input", OpOutput: "output", OpConst: "const",
	OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShlC: "shl", OpShrC: "shr", OpEq: "eq", OpLt: "lt",
	OpMux: "mux", OpSlice: "slice", OpZExt: "zext", OpConcat: "concat",
}

func (k OpKind) String() string {
	if n, ok := opNames[k]; ok {
		return n
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one node of the dataflow graph, in SSA form: operands reference
// earlier nodes only.
type Op struct {
	ID     int
	Kind   OpKind
	Width  int
	Args   []*Op
	Value  uint64 // OpConst value
	Amount int    // OpShlC/OpShrC shift, OpSlice low bit
	Name   string // OpInput/OpOutput port name

	// Filled by scheduling.
	Stage int
}

// Design is a complete captured dataflow design.
type Design struct {
	Name    string
	Ops     []*Op // topologically ordered (SSA creation order)
	Inputs  []*Op
	Outputs []*Op

	// Rates are the optional per-port token-rate annotations consumed by
	// the static communication-rate pass; see DeclareRate.
	Rates []RateAnno
}

// mask returns the width mask for w bits.
func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// Eval computes an op's value from already-computed operand values.
func (o *Op) Eval(args []uint64) uint64 {
	m := mask(o.Width)
	switch o.Kind {
	case OpConst:
		return o.Value & m
	case OpAdd:
		return (args[0] + args[1]) & m
	case OpSub:
		return (args[0] - args[1]) & m
	case OpMul:
		return (args[0] * args[1]) & m
	case OpAnd:
		return args[0] & args[1]
	case OpOr:
		return args[0] | args[1]
	case OpXor:
		return args[0] ^ args[1]
	case OpNot:
		return ^args[0] & m
	case OpShlC:
		if o.Amount >= 64 {
			return 0
		}
		return (args[0] << uint(o.Amount)) & m
	case OpShrC:
		if o.Amount >= 64 {
			return 0
		}
		return args[0] >> uint(o.Amount)
	case OpEq:
		if args[0] == args[1] {
			return 1
		}
		return 0
	case OpLt:
		if args[0] < args[1] {
			return 1
		}
		return 0
	case OpMux:
		if args[0]&1 == 1 {
			return args[1] & m
		}
		return args[2] & m
	case OpSlice:
		return (args[0] >> uint(o.Amount)) & m
	case OpZExt, OpOutput:
		return args[0] & m
	case OpConcat:
		lo := args[0] & mask(o.Args[0].Width)
		return (lo | args[1]<<uint(o.Args[0].Width)) & m
	default:
		panic(fmt.Sprintf("hls: cannot evaluate %v", o.Kind))
	}
}

// Interpret runs the design as untimed software — the golden reference
// against which generated netlists are checked for equivalence.
func (d *Design) Interpret(inputs map[string]uint64) map[string]uint64 {
	vals := make([]uint64, len(d.Ops))
	for _, op := range d.Ops {
		if op.Kind == OpInput {
			vals[op.ID] = inputs[op.Name] & mask(op.Width)
			continue
		}
		args := make([]uint64, len(op.Args))
		for i, a := range op.Args {
			args[i] = vals[a.ID]
		}
		vals[op.ID] = op.Eval(args)
	}
	out := make(map[string]uint64, len(d.Outputs))
	for _, o := range d.Outputs {
		out[o.Name] = vals[o.ID]
	}
	return out
}

// OpCount returns the number of non-port operations, the unrolled design
// size that drives HLS scheduling effort.
func (d *Design) OpCount() int {
	n := 0
	for _, op := range d.Ops {
		switch op.Kind {
		case OpInput, OpOutput, OpConst:
		default:
			n++
		}
	}
	return n
}

// Validate checks SSA ordering, widths and arities.
func (d *Design) Validate() error {
	seen := make([]bool, len(d.Ops))
	for i, op := range d.Ops {
		if op.ID != i {
			return fmt.Errorf("hls: %s: op %d has ID %d", d.Name, i, op.ID)
		}
		if op.Width < 1 || op.Width > 64 {
			return fmt.Errorf("hls: %s: op %d width %d", d.Name, i, op.Width)
		}
		for _, a := range op.Args {
			if a.ID >= i || !seen[a.ID] {
				return fmt.Errorf("hls: %s: op %d uses later op %d", d.Name, i, a.ID)
			}
		}
		want := map[OpKind]int{
			OpInput: 0, OpConst: 0, OpOutput: 1, OpNot: 1, OpShlC: 1,
			OpShrC: 1, OpSlice: 1, OpZExt: 1, OpMux: 3, OpConcat: 2,
		}
		if n, ok := want[op.Kind]; ok {
			if len(op.Args) != n {
				return fmt.Errorf("hls: %s: op %d (%v) arity %d", d.Name, i, op.Kind, len(op.Args))
			}
		} else if len(op.Args) != 2 {
			return fmt.Errorf("hls: %s: op %d (%v) arity %d", d.Name, i, op.Kind, len(op.Args))
		}
		if (op.Kind == OpEq || op.Kind == OpLt) && op.Width != 1 {
			return fmt.Errorf("hls: %s: comparison op %d must be 1 bit wide", d.Name, i)
		}
		seen[i] = true
	}
	return nil
}
