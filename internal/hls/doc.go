// Package hls is the high-level synthesis compiler of the flow: it
// captures untimed dataflow designs through a builder API (this
// repository's stand-in for synthesizable C++/SystemC), applies
// optimization passes, schedules operations into pipeline stages under a
// clock-period constraint with optional resource limits, and hands the
// scheduled op graph to internal/synth for technology mapping.
//
// The compiler reproduces the structural effects the paper reports from
// Catapult: variable-index writes unroll into priority-mux chains
// (the src-loop crossbar penalty of §2.4), variable-index reads into
// balanced select-mux trees (dst-loop), pipelining inserts register banks
// at stage cuts, and scheduling time scales with the unrolled op count.
package hls
