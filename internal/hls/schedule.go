package hls

import (
	"fmt"
	"math/bits"
)

// Constraints parameterize a compilation, decoupled from the design
// source exactly as HLS/synthesis scripts are in the paper's flow.
type Constraints struct {
	ClockPS    int // target clock period in picoseconds
	MaxMuls    int // multipliers available per stage (0 = unlimited)
	MaxAdders  int // adders/subtractors available per stage (0 = unlimited)
	NoPipeline bool
}

// DefaultConstraints targets the testchip's 1.1 GHz signoff clock.
func DefaultConstraints() Constraints { return Constraints{ClockPS: 909} }

// Schedule is the result of pipelining a design.
type Schedule struct {
	Design  *Design
	Clock   int // requested period, ps
	Period  int // achieved period, ps (≥ Clock when a single op is slower)
	Latency int // pipeline stages (0 = combinational)
	RegBits int // pipeline register bits inserted

	// Steps counts scheduler work items, the deterministic proxy for HLS
	// compile effort that grows with unrolled design size.
	Steps int
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// opDelay is the pre-synthesis timing estimate in picoseconds used for
// scheduling; signoff timing comes from synth.STA after mapping.
func opDelay(op *Op) int {
	w := op.Width
	switch op.Kind {
	case OpAdd, OpSub:
		return 60 + 25*log2ceil(w) // carry-lookahead estimate
	case OpMul:
		return 150 + 60*log2ceil(w)
	case OpAnd, OpOr, OpXor, OpNot:
		return 25
	case OpEq:
		return 30 + 15*log2ceil(op.Args[0].Width)
	case OpLt:
		return 60 + 25*log2ceil(op.Args[0].Width)
	case OpMux:
		return 45
	default:
		return 0 // wiring: slice, concat, zext, shifts by constant, ports
	}
}

// opArea is the pre-synthesis NAND2-equivalent area estimate.
func opArea(op *Op) float64 {
	w := float64(op.Width)
	switch op.Kind {
	case OpAdd, OpSub:
		return 7 * w
	case OpMul:
		return 5.5 * w * w
	case OpAnd, OpOr, OpXor:
		return 1.3 * w
	case OpNot:
		return 0.75 * w
	case OpEq:
		return 2.4 * float64(op.Args[0].Width)
	case OpLt:
		return 7 * float64(op.Args[0].Width)
	case OpMux:
		return 2.3 * w
	default:
		return 0
	}
}

// RegBitArea is the NAND2-equivalent cost of one pipeline register bit.
const RegBitArea = 4.5

// Pipeline assigns every op a stage so no combinational path exceeds the
// clock constraint and per-stage resource limits hold, then counts the
// pipeline registers needed for values crossing stage boundaries. It is
// a list scheduler over the SSA order.
func Pipeline(d *Design, c Constraints) *Schedule {
	s := &Schedule{Design: d, Clock: c.ClockPS, Period: c.ClockPS}
	if c.ClockPS <= 0 {
		panic("hls: non-positive clock constraint")
	}
	finish := make([]int, len(d.Ops)) // combinational finish time within stage
	mulsIn := map[int]int{}
	addsIn := map[int]int{}
	for _, op := range d.Ops {
		s.Steps++
		stage, offset := 0, 0
		for _, a := range op.Args {
			if a.Stage > stage {
				stage, offset = a.Stage, 0
			}
		}
		for _, a := range op.Args {
			if a.Stage == stage && finish[a.ID] > offset {
				offset = finish[a.ID]
			}
		}
		delay := opDelay(op)
		if delay > s.Period {
			s.Period = delay // op slower than the clock: stretch signoff period
		}
		if !c.NoPipeline && offset > 0 && offset+delay > c.ClockPS {
			stage++
			offset = 0
			s.Steps++
		}
		// Resource-constrained placement: slide forward past full stages.
		for {
			if op.Kind == OpMul && c.MaxMuls > 0 && mulsIn[stage] >= c.MaxMuls && !c.NoPipeline {
				stage++
				offset = 0
				s.Steps++
				continue
			}
			if (op.Kind == OpAdd || op.Kind == OpSub) && c.MaxAdders > 0 && addsIn[stage] >= c.MaxAdders && !c.NoPipeline {
				stage++
				offset = 0
				s.Steps++
				continue
			}
			break
		}
		switch op.Kind {
		case OpMul:
			mulsIn[stage]++
		case OpAdd, OpSub:
			addsIn[stage]++
		}
		op.Stage = stage
		finish[op.ID] = offset + delay
		if stage > s.Latency {
			s.Latency = stage
		}
	}
	// Pipeline registers: a value produced in stage p and consumed in
	// stage q > p needs (q-p) registers of its width.
	lastUse := make([]int, len(d.Ops))
	for i := range lastUse {
		lastUse[i] = -1
	}
	for _, op := range d.Ops {
		for _, a := range op.Args {
			if op.Stage > lastUse[a.ID] {
				lastUse[a.ID] = op.Stage
			}
		}
	}
	for _, op := range d.Ops {
		if lastUse[op.ID] > op.Stage {
			s.RegBits += op.Width * (lastUse[op.ID] - op.Stage)
		}
	}
	return s
}

// AreaEstimate returns the scheduler's pre-synthesis area estimate in
// NAND2 equivalents, including pipeline registers.
func (s *Schedule) AreaEstimate() float64 {
	a := float64(s.RegBits) * RegBitArea
	for _, op := range s.Design.Ops {
		a += opArea(op)
	}
	return a
}

// FmaxMHz returns the achieved clock frequency.
func (s *Schedule) FmaxMHz() float64 { return 1e6 / float64(s.Period) }

func (s *Schedule) String() string {
	return fmt.Sprintf("%s: %d ops, %d stages @ %dps, %d reg bits, %.0f NAND2-eq",
		s.Design.Name, s.Design.OpCount(), s.Latency+1, s.Period, s.RegBits, s.AreaEstimate())
}
