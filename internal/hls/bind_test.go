package hls

import (
	"bytes"
	"strings"
	"testing"
)

func firSchedule(t *testing.T) *Schedule {
	t.Helper()
	// A tight clock spreads the FIR's multipliers across several stages,
	// giving the binder slots to share across.
	return Pipeline(Optimize(FIRDesign(16, 16)), Constraints{ClockPS: 500, MaxMuls: 4})
}

func TestBindIIOneMatchesUnshared(t *testing.T) {
	s := firSchedule(t)
	b := Bind(s, 1)
	// At II=1 every op is live every cycle within its slot, but sharing
	// can still occur across stages only when stages mod 1 collapse to
	// one slot — i.e. none. Units must equal the per-slot maximum, which
	// at II=1 is the total per-stage maximum ≤ total ops.
	if b.SharedArea > b.UnsharedArea {
		t.Fatalf("II=1 shared area %.0f exceeds unshared %.0f", b.SharedArea, b.UnsharedArea)
	}
}

func TestBindHigherIISavesArea(t *testing.T) {
	s := firSchedule(t)
	b1 := Bind(s, 1)
	b4 := Bind(s, 4)
	if b4.MulUnits >= b1.MulUnits {
		t.Fatalf("II=4 uses %d multipliers, II=1 uses %d — sharing missing", b4.MulUnits, b1.MulUnits)
	}
	if b4.SharedArea >= b1.SharedArea {
		t.Fatalf("II=4 area %.0f not below II=1 area %.0f", b4.SharedArea, b1.SharedArea)
	}
	if b4.SavingsPct <= 0 {
		t.Fatalf("II=4 reports no savings: %+v", b4)
	}
}

func TestBindMonotoneUnits(t *testing.T) {
	s := firSchedule(t)
	prev := 1 << 30
	for _, ii := range []int{1, 2, 4, 8} {
		b := Bind(s, ii)
		if b.MulUnits > prev {
			t.Fatalf("II=%d needs %d multipliers, more than smaller II's %d", ii, b.MulUnits, prev)
		}
		prev = b.MulUnits
	}
}

func TestBindSharingMuxOverheadCounted(t *testing.T) {
	s := firSchedule(t)
	b := Bind(s, 8)
	// With deep sharing, the mux overhead must keep shared area above
	// the bare cost of the remaining units.
	unitOnly := b.UnsharedArea * float64(b.MulUnits+b.AddUnits) /
		float64(maxInt(1, totalShareable(s)))
	if b.SharedArea <= unitOnly {
		t.Fatalf("shared area %.0f ignores mux overhead (units-only bound %.0f)", b.SharedArea, unitOnly)
	}
}

func totalShareable(s *Schedule) int {
	n := 0
	for _, op := range s.Design.Ops {
		if shareable(op.Kind) {
			n++
		}
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestIISweepPrint(t *testing.T) {
	s := firSchedule(t)
	var buf bytes.Buffer
	PrintIISweep(&buf, s.Design.Name, IISweep(s, []int{1, 2, 4, 8}))
	out := buf.String()
	if !strings.Contains(out, "Initiation-interval") || strings.Count(out, "\n") < 6 {
		t.Fatalf("sweep output malformed:\n%s", out)
	}
}

func TestBindRejectsBadII(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for II=0")
		}
	}()
	Bind(firSchedule(t), 0)
}
