package hls

// RateAnno declares one port's steady-state token rate for the static
// communication-rate pass (internal/ratecheck): the kernel moves Num/Den
// tokens through the named port per firing. A fully pipelined schedule
// initiates one firing per cycle (II = 1), so the annotation doubles as
// the port's tokens-per-cycle bound once the design is scheduled.
type RateAnno struct {
	Port string
	Num  int64
	Den  int64
}

// DeclareRate records a port rate annotation. Validation happens in
// ratecheck.CheckHLS, not here, so capture code can annotate freely and
// get one structured diagnostic list later; the method returns the
// design for chaining.
func (d *Design) DeclareRate(port string, num, den int64) *Design {
	d.Rates = append(d.Rates, RateAnno{Port: port, Num: num, Den: den})
	return d
}
