package hls

import (
	"fmt"
	"io"
)

// Binding is the resource-sharing result for a schedule executed at an
// initiation interval of II cycles: a new input set enters every II
// cycles, so operations whose stages are congruent modulo II execute in
// the same physical time slot and need distinct units, while operations
// in different slots time-multiplex one unit behind input muxes. This is
// the design-space-exploration knob HLS exposes without touching source
// code (§2.2 of the paper: "decoupling of functionality ... from design
// constraints").
type Binding struct {
	II int

	// Units needed per shareable operation kind.
	MulUnits int
	AddUnits int

	// Area accounting, NAND2 equivalents.
	UnsharedArea float64 // II = 1 baseline (no sharing possible)
	SharedArea   float64 // functional units + sharing muxes + registers
	SavingsPct   float64
}

// shareable reports whether an op kind occupies a functional unit worth
// time-multiplexing (wide arithmetic; cheap logic is never shared).
func shareable(k OpKind) bool {
	switch k {
	case OpMul, OpAdd, OpSub:
		return true
	}
	return false
}

// Bind computes the resource sharing achievable at the given initiation
// interval for an already-pipelined design.
func Bind(s *Schedule, ii int) Binding {
	if ii < 1 {
		panic(fmt.Sprintf("hls: initiation interval %d < 1", ii))
	}
	b := Binding{II: ii}

	// Count shareable ops per (kind, stage mod II) slot, tracking the
	// widest instance per kind (the physical unit must cover it).
	type key struct {
		kind OpKind
		slot int
	}
	slots := map[key]int{}
	counts := map[OpKind]int{}
	maxW := map[OpKind]int{}
	var fixedArea float64 // non-shareable logic and ports
	for _, op := range s.Design.Ops {
		if !shareable(op.Kind) {
			fixedArea += opArea(op)
			continue
		}
		slots[key{op.Kind, op.Stage % ii}]++
		counts[op.Kind]++
		if op.Width > maxW[op.Kind] {
			maxW[op.Kind] = op.Width
		}
	}
	units := map[OpKind]int{}
	for k, n := range slots {
		if n > units[k.kind] {
			units[k.kind] = n
		}
	}
	b.MulUnits = units[OpMul]
	b.AddUnits = units[OpAdd] + units[OpSub]

	regArea := float64(s.RegBits) * RegBitArea
	b.UnsharedArea = fixedArea + regArea
	b.SharedArea = fixedArea + regArea
	for kind, total := range counts {
		w := maxW[kind]
		unit := opArea(&Op{Kind: kind, Width: w, Args: []*Op{{Width: w}, {Width: w}}})
		b.UnsharedArea += float64(total) * unit
		u := units[kind]
		if u == 0 {
			continue
		}
		b.SharedArea += float64(u) * unit
		// Each unit multiplexes total/u sources: a (total/u):1 mux per
		// operand input, built from 2:1 muxes.
		fan := (total + u - 1) / u
		if fan > 1 {
			muxes := float64(fan-1) * 2.25 * float64(w) * 2 // two operand inputs
			b.SharedArea += float64(u) * muxes
		}
	}
	if b.UnsharedArea > 0 {
		b.SavingsPct = 100 * (b.UnsharedArea - b.SharedArea) / b.UnsharedArea
	}
	return b
}

// IISweep reports Bind across a range of initiation intervals — the
// throughput-versus-area ablation of the scheduling constraints.
func IISweep(s *Schedule, iis []int) []Binding {
	out := make([]Binding, 0, len(iis))
	for _, ii := range iis {
		out = append(out, Bind(s, ii))
	}
	return out
}

// PrintIISweep renders the ablation.
func PrintIISweep(w io.Writer, name string, bs []Binding) {
	fmt.Fprintf(w, "Initiation-interval ablation for %s (area model, NAND2 equivalents)\n", name)
	fmt.Fprintf(w, "%-4s %6s %6s %12s %12s %9s\n", "II", "muls", "adds", "unshared", "shared", "savings")
	for _, b := range bs {
		fmt.Fprintf(w, "%-4d %6d %6d %12.0f %12.0f %8.1f%%\n",
			b.II, b.MulUnits, b.AddUnits, b.UnsharedArea, b.SharedArea, b.SavingsPct)
	}
}
