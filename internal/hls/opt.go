package hls

import "fmt"

// Optimize runs the pre-scheduling logic optimizations: constant folding,
// common-subexpression elimination, and dead-code elimination. It returns
// a new Design; the input is not modified. Port ops are always preserved.
func Optimize(d *Design) *Design {
	folded := constFold(d)
	return rebuild(folded, cse(folded))
}

// constFold computes values for ops whose operands are all constants and
// replaces them with OpConst nodes (in a copied op list).
func constFold(d *Design) *Design {
	nd := &Design{Name: d.Name}
	repl := make([]*Op, len(d.Ops))
	for _, op := range d.Ops {
		c := &Op{ID: len(nd.Ops), Kind: op.Kind, Width: op.Width,
			Value: op.Value, Amount: op.Amount, Name: op.Name}
		for _, a := range op.Args {
			c.Args = append(c.Args, repl[a.ID])
		}
		if c.Kind != OpInput && c.Kind != OpOutput && c.Kind != OpConst {
			allConst := len(c.Args) > 0
			for _, a := range c.Args {
				if a.Kind != OpConst {
					allConst = false
					break
				}
			}
			if allConst {
				args := make([]uint64, len(c.Args))
				for i, a := range c.Args {
					args[i] = a.Value
				}
				// Eval needs Args for Concat widths; keep them until after.
				v := c.Eval(args)
				c = &Op{ID: c.ID, Kind: OpConst, Width: c.Width, Value: v}
			}
		}
		repl[op.ID] = c
		nd.Ops = append(nd.Ops, c)
		switch c.Kind {
		case OpInput:
			nd.Inputs = append(nd.Inputs, c)
		case OpOutput:
			nd.Outputs = append(nd.Outputs, c)
		}
	}
	return nd
}

// cse maps each op to its canonical representative.
func cse(d *Design) []*Op {
	canon := make([]*Op, len(d.Ops))
	table := map[string]*Op{}
	for _, op := range d.Ops {
		if op.Kind == OpInput || op.Kind == OpOutput {
			canon[op.ID] = op
			continue
		}
		key := fmt.Sprintf("%d:%d:%d:%d", op.Kind, op.Width, op.Value, op.Amount)
		for _, a := range op.Args {
			key += fmt.Sprintf(":%d", canon[a.ID].ID)
		}
		if prev, ok := table[key]; ok {
			canon[op.ID] = prev
		} else {
			table[key] = op
			canon[op.ID] = op
		}
	}
	return canon
}

// rebuild emits a new design keeping only ops reachable from outputs,
// with operands redirected through the canonical map.
func rebuild(d *Design, canon []*Op) *Design {
	live := make([]bool, len(d.Ops))
	var mark func(op *Op)
	mark = func(op *Op) {
		op = canon[op.ID]
		if live[op.ID] {
			return
		}
		live[op.ID] = true
		for _, a := range op.Args {
			mark(a)
		}
	}
	for _, o := range d.Outputs {
		mark(o)
	}
	for _, in := range d.Inputs {
		live[in.ID] = true // ports survive even if unused
	}
	nd := &Design{Name: d.Name}
	newOp := make([]*Op, len(d.Ops))
	for _, op := range d.Ops {
		if canon[op.ID] != op || !live[op.ID] {
			continue
		}
		c := &Op{ID: len(nd.Ops), Kind: op.Kind, Width: op.Width,
			Value: op.Value, Amount: op.Amount, Name: op.Name}
		for _, a := range op.Args {
			c.Args = append(c.Args, newOp[canon[a.ID].ID])
		}
		newOp[op.ID] = c
		nd.Ops = append(nd.Ops, c)
		switch c.Kind {
		case OpInput:
			nd.Inputs = append(nd.Inputs, c)
		case OpOutput:
			nd.Outputs = append(nd.Outputs, c)
		}
	}
	if err := nd.Validate(); err != nil {
		panic(err)
	}
	return nd
}
