package hls

import "fmt"

// Val is a handle to a dataflow value during capture.
type Val struct {
	op *Op
	b  *Builder
}

// Width returns the value's bit width.
func (v Val) Width() int { return v.op.Width }

// Builder captures a design by executing ordinary Go code — the analogue
// of writing synthesizable C++ that HLS unrolls and flattens. Loops are
// plain Go loops (full unrolling), and variable-index array accesses
// expand into the mux structures HLS would generate.
type Builder struct {
	d *Design
}

// NewBuilder starts capturing a design.
func NewBuilder(name string) *Builder {
	return &Builder{d: &Design{Name: name}}
}

func (b *Builder) add(op *Op) Val {
	op.ID = len(b.d.Ops)
	b.d.Ops = append(b.d.Ops, op)
	return Val{op: op, b: b}
}

// Input declares a scalar input port.
func (b *Builder) Input(name string, width int) Val {
	v := b.add(&Op{Kind: OpInput, Width: width, Name: name})
	b.d.Inputs = append(b.d.Inputs, v.op)
	return v
}

// InputArray declares n input ports name0..name{n-1}.
func (b *Builder) InputArray(name string, width, n int) []Val {
	vs := make([]Val, n)
	for i := range vs {
		vs[i] = b.Input(fmt.Sprintf("%s%d", name, i), width)
	}
	return vs
}

// Output declares a scalar output port driven by v.
func (b *Builder) Output(name string, v Val) {
	o := b.add(&Op{Kind: OpOutput, Width: v.op.Width, Args: []*Op{v.op}, Name: name})
	b.d.Outputs = append(b.d.Outputs, o.op)
}

// Const materializes a constant of the given width.
func (b *Builder) Const(value uint64, width int) Val {
	return b.add(&Op{Kind: OpConst, Width: width, Value: value & mask(width)})
}

func (b *Builder) bin(kind OpKind, width int, x, y Val) Val {
	return b.add(&Op{Kind: kind, Width: width, Args: []*Op{x.op, y.op}})
}

func sameWidth(op string, x, y Val) {
	if x.op.Width != y.op.Width {
		panic(fmt.Sprintf("hls: %s width mismatch %d vs %d", op, x.op.Width, y.op.Width))
	}
}

// Add returns x+y (widths must match).
func (b *Builder) Add(x, y Val) Val { sameWidth("Add", x, y); return b.bin(OpAdd, x.op.Width, x, y) }

// Sub returns x-y.
func (b *Builder) Sub(x, y Val) Val { sameWidth("Sub", x, y); return b.bin(OpSub, x.op.Width, x, y) }

// Mul returns x*y truncated to x's width.
func (b *Builder) Mul(x, y Val) Val { sameWidth("Mul", x, y); return b.bin(OpMul, x.op.Width, x, y) }

// And returns x&y.
func (b *Builder) And(x, y Val) Val { sameWidth("And", x, y); return b.bin(OpAnd, x.op.Width, x, y) }

// Or returns x|y.
func (b *Builder) Or(x, y Val) Val { sameWidth("Or", x, y); return b.bin(OpOr, x.op.Width, x, y) }

// Xor returns x^y.
func (b *Builder) Xor(x, y Val) Val { sameWidth("Xor", x, y); return b.bin(OpXor, x.op.Width, x, y) }

// Not returns ^x.
func (b *Builder) Not(x Val) Val {
	return b.add(&Op{Kind: OpNot, Width: x.op.Width, Args: []*Op{x.op}})
}

// Shl returns x << n.
func (b *Builder) Shl(x Val, n int) Val {
	return b.add(&Op{Kind: OpShlC, Width: x.op.Width, Args: []*Op{x.op}, Amount: n})
}

// Shr returns x >> n.
func (b *Builder) Shr(x Val, n int) Val {
	return b.add(&Op{Kind: OpShrC, Width: x.op.Width, Args: []*Op{x.op}, Amount: n})
}

// Eq returns the 1-bit comparison x == y.
func (b *Builder) Eq(x, y Val) Val { sameWidth("Eq", x, y); return b.bin(OpEq, 1, x, y) }

// EqConst returns the 1-bit comparison x == k.
func (b *Builder) EqConst(x Val, k uint64) Val { return b.Eq(x, b.Const(k, x.op.Width)) }

// Lt returns the 1-bit unsigned comparison x < y.
func (b *Builder) Lt(x, y Val) Val { sameWidth("Lt", x, y); return b.bin(OpLt, 1, x, y) }

// Mux returns sel ? a : b. sel must be 1 bit.
func (b *Builder) Mux(sel, a, x Val) Val {
	if sel.op.Width != 1 {
		panic("hls: mux select must be 1 bit")
	}
	sameWidth("Mux", a, x)
	return b.add(&Op{Kind: OpMux, Width: a.op.Width, Args: []*Op{sel.op, a.op, x.op}})
}

// Slice returns bits [lo, lo+width) of x.
func (b *Builder) Slice(x Val, lo, width int) Val {
	if lo < 0 || lo+width > x.op.Width {
		panic(fmt.Sprintf("hls: slice [%d,%d) of %d-bit value", lo, lo+width, x.op.Width))
	}
	return b.add(&Op{Kind: OpSlice, Width: width, Args: []*Op{x.op}, Amount: lo})
}

// ZExt widens x with zeros.
func (b *Builder) ZExt(x Val, width int) Val {
	if width < x.op.Width {
		panic("hls: zext narrows")
	}
	if width == x.op.Width {
		return x
	}
	return b.add(&Op{Kind: OpZExt, Width: width, Args: []*Op{x.op}})
}

// Concat returns {hi, lo} with lo in the low bits.
func (b *Builder) Concat(lo, hi Val) Val {
	return b.add(&Op{Kind: OpConcat, Width: lo.op.Width + hi.op.Width, Args: []*Op{lo.op, hi.op}})
}

// ReadIdx models in[idx]: a variable-index array read. HLS expands it
// into a balanced tree of 2:1 select muxes driven by the index bits —
// the structure behind the efficient dst-loop crossbar coding.
func (b *Builder) ReadIdx(arr []Val, idx Val) Val {
	if len(arr) == 0 {
		panic("hls: ReadIdx of empty array")
	}
	layer := make([]Val, len(arr))
	copy(layer, arr)
	bit := 0
	for len(layer) > 1 {
		sel := b.Slice(idx, bit, 1)
		next := make([]Val, 0, (len(layer)+1)/2)
		for i := 0; i < len(layer); i += 2 {
			if i+1 < len(layer) {
				next = append(next, b.Mux(sel, layer[i+1], layer[i]))
			} else {
				next = append(next, layer[i])
			}
		}
		layer = next
		bit++
		if bit > idx.op.Width && len(layer) > 1 {
			panic(fmt.Sprintf("hls: index width %d too narrow for %d elements", idx.op.Width, len(arr)))
		}
	}
	return layer[0]
}

// WriteIdx models out[idx] = v over the current SSA values of an output
// array: every element gets a comparator against its position and a 2:1
// mux, and repeated WriteIdx calls chain those muxes serially — the
// priority-decoder structure behind the src-loop crossbar penalty.
func (b *Builder) WriteIdx(arr []Val, idx Val, v Val) {
	for j := range arr {
		hit := b.EqConst(idx, uint64(j))
		arr[j] = b.Mux(hit, v, arr[j])
	}
}

// ReduceAdd sums the values with a balanced adder tree.
func (b *Builder) ReduceAdd(vs []Val) Val {
	if len(vs) == 0 {
		panic("hls: ReduceAdd of nothing")
	}
	layer := make([]Val, len(vs))
	copy(layer, vs)
	for len(layer) > 1 {
		next := make([]Val, 0, (len(layer)+1)/2)
		for i := 0; i < len(layer); i += 2 {
			if i+1 < len(layer) {
				next = append(next, b.Add(layer[i], layer[i+1]))
			} else {
				next = append(next, layer[i])
			}
		}
		layer = next
	}
	return layer[0]
}

// Build finalizes and validates the captured design.
func (b *Builder) Build() *Design {
	if err := b.d.Validate(); err != nil {
		panic(err)
	}
	return b.d
}
