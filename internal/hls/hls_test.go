package hls

import (
	"fmt"
	"math/rand"
	"testing"
)

func randInputs(r *rand.Rand, d *Design) map[string]uint64 {
	in := map[string]uint64{}
	for _, p := range d.Inputs {
		in[p.Name] = r.Uint64() & mask(p.Width)
	}
	return in
}

func TestInterpretMAC(t *testing.T) {
	d := MACDesign(16)
	out := d.Interpret(map[string]uint64{"a": 3, "b": 5, "acc": 7})
	if out["out"] != 22 {
		t.Fatalf("mac = %d, want 22", out["out"])
	}
	out = d.Interpret(map[string]uint64{"a": 0xffff, "b": 0xffff, "acc": 0})
	if out["out"] != (0xffff*0xffff)&0xffff {
		t.Fatalf("mac wrap = %#x", out["out"])
	}
}

func TestCrossbarDesignsMatchSoftwareModel(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for _, lanes := range []int{2, 4, 8} {
		dDst := CrossbarDstLoopDesign(lanes, 16)
		dSrc := CrossbarSrcLoopDesign(lanes, 16)
		for iter := 0; iter < 50; iter++ {
			in := make([]uint64, lanes)
			perm := r.Perm(lanes)
			dstIn := map[string]uint64{}
			srcIn := map[string]uint64{}
			for i := range in {
				in[i] = r.Uint64() & 0xffff
				dstIn[fmt.Sprintf("in%d", i)] = in[i]
				srcIn[fmt.Sprintf("in%d", i)] = in[i]
			}
			// dst-loop wants src[dst]; src-loop wants dst[src] = perm.
			for d2 := 0; d2 < lanes; d2++ {
				for s2 := 0; s2 < lanes; s2++ {
					if perm[s2] == d2 {
						dstIn[fmt.Sprintf("src%d", d2)] = uint64(s2)
					}
				}
			}
			for s2 := 0; s2 < lanes; s2++ {
				srcIn[fmt.Sprintf("dst%d", s2)] = uint64(perm[s2])
			}
			outDst := dDst.Interpret(dstIn)
			outSrc := dSrc.Interpret(srcIn)
			for j := 0; j < lanes; j++ {
				name := fmt.Sprintf("out%d", j)
				if outDst[name] != outSrc[name] {
					t.Fatalf("lanes=%d out%d: dst-loop %#x vs src-loop %#x", lanes, j, outDst[name], outSrc[name])
				}
			}
		}
	}
}

func TestALUDesign(t *testing.T) {
	d := ALUDesign(8)
	cases := []struct {
		op   uint64
		a, b uint64
		want uint64
	}{
		{0, 200, 100, 44}, // add wraps
		{1, 10, 3, 7},     // sub
		{2, 0xf0, 0x3c, 0x30},
		{3, 0xf0, 0x3c, 0xfc},
		{4, 0xf0, 0x3c, 0xcc},
		{5, 0x81, 0, 0x02}, // shl1
		{6, 0x81, 0, 0x40}, // shr1
		{7, 0x0f, 0, 0xf0}, // not
	}
	for _, c := range cases {
		out := d.Interpret(map[string]uint64{"a": c.a, "b": c.b, "op": c.op})
		if out["out"] != c.want {
			t.Fatalf("alu op %d: got %#x want %#x", c.op, out["out"], c.want)
		}
	}
}

func TestEncoderDecoderInverse(t *testing.T) {
	const n = 8
	dec := DecoderDesign(n)
	enc := EncoderDesign(n)
	for i := uint64(0); i < n; i++ {
		oh := dec.Interpret(map[string]uint64{"idx": i})["onehot"]
		if oh != 1<<i {
			t.Fatalf("decode(%d) = %#x", i, oh)
		}
		back := enc.Interpret(map[string]uint64{"onehot": oh})["idx"]
		if back != i {
			t.Fatalf("encode(decode(%d)) = %d", i, back)
		}
	}
}

func TestPriorityArbiterDesign(t *testing.T) {
	d := PriorityArbiterDesign(6)
	for req := uint64(0); req < 64; req++ {
		grant := d.Interpret(map[string]uint64{"req": req})["grant"]
		if req == 0 {
			if grant != 0 {
				t.Fatalf("grant %b for no requests", grant)
			}
			continue
		}
		if grant&(grant-1) != 0 || grant == 0 {
			t.Fatalf("req %b: grant %b not one-hot", req, grant)
		}
		if grant != req&-req {
			t.Fatalf("req %b: grant %b not lowest requester", req, grant)
		}
	}
}

func TestMaxTreeAndPopcount(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	dm := MaxTreeDesign(7, 12)
	dp := PopcountDesign(13)
	for iter := 0; iter < 200; iter++ {
		in := map[string]uint64{}
		var want uint64
		for i := 0; i < 7; i++ {
			v := r.Uint64() & 0xfff
			in[fmt.Sprintf("x%d", i)] = v
			if v > want {
				want = v
			}
		}
		if got := dm.Interpret(in)["max"]; got != want {
			t.Fatalf("max = %d, want %d", got, want)
		}
		x := r.Uint64() & 0x1fff
		pc := uint64(0)
		for b := x; b != 0; b &= b - 1 {
			pc++
		}
		if got := dp.Interpret(map[string]uint64{"x": x})["count"]; got != pc {
			t.Fatalf("popcount(%#x) = %d, want %d", x, got, pc)
		}
	}
}

// Property: Optimize preserves input/output semantics on random vectors
// and never increases op count.
func TestOptimizePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	designs := []*Design{
		MACDesign(16), FIRDesign(8, 16), AdderTreeDesign(9, 24),
		ALUDesign(16), CrossbarSrcLoopDesign(4, 8), CrossbarDstLoopDesign(4, 8),
		EncoderDesign(8), DecoderDesign(8), PriorityArbiterDesign(8),
		MaxTreeDesign(5, 16), PopcountDesign(16),
	}
	for _, d := range designs {
		opt := Optimize(d)
		if opt.OpCount() > d.OpCount() {
			t.Errorf("%s: optimize grew ops %d -> %d", d.Name, d.OpCount(), opt.OpCount())
		}
		for iter := 0; iter < 50; iter++ {
			in := randInputs(r, d)
			a, b := d.Interpret(in), opt.Interpret(in)
			for name := range a {
				if a[name] != b[name] {
					t.Fatalf("%s: output %s differs after optimize: %#x vs %#x", d.Name, name, a[name], b[name])
				}
			}
		}
	}
}

func TestOptimizeFoldsConstants(t *testing.T) {
	b := NewBuilder("fold")
	x := b.Input("x", 8)
	c := b.Add(b.Const(3, 8), b.Const(4, 8)) // should fold to 7
	b.Output("y", b.Add(x, c))
	d := Optimize(b.Build())
	if d.OpCount() != 1 {
		t.Fatalf("op count after fold = %d, want 1 (just the add)", d.OpCount())
	}
}

func TestOptimizeCSE(t *testing.T) {
	b := NewBuilder("cse")
	x := b.Input("x", 8)
	y := b.Input("y", 8)
	b.Output("a", b.Mul(x, y))
	b.Output("b", b.Mul(x, y)) // duplicate
	d := Optimize(b.Build())
	if d.OpCount() != 1 {
		t.Fatalf("op count after CSE = %d, want 1", d.OpCount())
	}
}

// Pipelining invariants: stages are topologically consistent and no
// intra-stage combinational path exceeds the achieved period.
func TestPipelineTimingInvariant(t *testing.T) {
	for _, d := range []*Design{
		FIRDesign(16, 32), CrossbarSrcLoopDesign(8, 32), AdderTreeDesign(32, 32), MACDesign(32),
	} {
		d := Optimize(d)
		s := Pipeline(d, Constraints{ClockPS: 400})
		finish := make([]int, len(d.Ops))
		for _, op := range d.Ops {
			start := 0
			for _, a := range op.Args {
				if a.Stage > op.Stage {
					t.Fatalf("%s: op %d stage %d before arg stage %d", d.Name, op.ID, op.Stage, a.Stage)
				}
				if a.Stage == op.Stage && finish[a.ID] > start {
					start = finish[a.ID]
				}
			}
			finish[op.ID] = start + opDelay(op)
			if finish[op.ID] > s.Period {
				t.Fatalf("%s: op %d finishes at %dps > period %dps", d.Name, op.ID, finish[op.ID], s.Period)
			}
		}
		if s.Latency == 0 {
			t.Errorf("%s: expected pipelining at 400ps", d.Name)
		}
		if s.RegBits == 0 {
			t.Errorf("%s: pipelined design has no pipeline registers", d.Name)
		}
	}
}

func TestNoPipelineKeepsCombinational(t *testing.T) {
	d := Optimize(FIRDesign(16, 32))
	s := Pipeline(d, Constraints{ClockPS: 400, NoPipeline: true})
	if s.Latency != 0 {
		t.Fatalf("latency %d with NoPipeline", s.Latency)
	}
	if s.Period <= 400 {
		t.Fatalf("combinational FIR cannot meet 400ps; period = %d", s.Period)
	}
}

func TestResourceConstraintIncreasesLatency(t *testing.T) {
	free := Pipeline(Optimize(FIRDesign(16, 16)), Constraints{ClockPS: 1200})
	tight := Pipeline(Optimize(FIRDesign(16, 16)), Constraints{ClockPS: 1200, MaxMuls: 2})
	if tight.Latency <= free.Latency {
		t.Fatalf("latency %d with 2 muls <= %d unconstrained", tight.Latency, free.Latency)
	}
}

// The §2.4 QoR effect at the scheduler's area estimate: the src-loop
// coding costs measurably more than dst-loop and takes more scheduler
// work at every size.
func TestSrcLoopPenalty(t *testing.T) {
	for _, lanes := range []int{8, 16, 32} {
		cons := DefaultConstraints()
		src := Pipeline(Optimize(CrossbarSrcLoopDesign(lanes, 32)), cons)
		dst := Pipeline(Optimize(CrossbarDstLoopDesign(lanes, 32)), cons)
		ratio := src.AreaEstimate() / dst.AreaEstimate()
		if ratio < 1.10 {
			t.Errorf("lanes=%d: src/dst area ratio %.2f, want > 1.10", lanes, ratio)
		}
		if src.Steps <= dst.Steps {
			t.Errorf("lanes=%d: src-loop scheduling steps %d <= dst-loop %d", lanes, src.Steps, dst.Steps)
		}
	}
}

func TestValidateCatchesBadDesign(t *testing.T) {
	d := &Design{Name: "bad", Ops: []*Op{{ID: 0, Kind: OpAdd, Width: 8}}}
	if err := d.Validate(); err == nil {
		t.Fatal("no error for arity violation")
	}
}

func BenchmarkScheduleCrossbarSrc32(b *testing.B) {
	d := Optimize(CrossbarSrcLoopDesign(32, 32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pipeline(d, DefaultConstraints())
	}
}

func BenchmarkScheduleCrossbarDst32(b *testing.B) {
	d := Optimize(CrossbarDstLoopDesign(32, 32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pipeline(d, DefaultConstraints())
	}
}
