package repro

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/hls"
	"repro/internal/rtl"
	"repro/internal/synth"
)

// --- BENCH_rtl.json: gate-level evaluator throughput ---
//
// The compiled backend (internal/rtl/compile.go) must make RTL
// cosimulation an order-of-magnitude item, not a per-cell interpreter
// crawl. These benches drive the levelized testbench designs the flow's
// own tests cosimulate — the MAC, FIR and ALU datapaths — through both
// backends and report cycles/sec; BENCH_rtl.json records the trajectory
// and TestRTLPerfGate holds the floor in CI.

// rtlBenchDesigns are the levelized testbench designs the kernel-speed
// trajectory is recorded on.
func rtlBenchDesigns() []*hls.Design {
	return []*hls.Design{
		hls.MACDesign(32),
		hls.FIRDesign(8, 16),
		hls.ALUDesign(32),
	}
}

func rtlBenchNetlist(d *hls.Design) *rtl.Netlist {
	return synth.Optimize(synth.Map(hls.Pipeline(hls.Optimize(d), hls.DefaultConstraints())))
}

// runRTLCycles drives cycles random vectors through sim. The
// interpreter runs the map-based Step the consumers used before the
// compiled backend existed; the compiled program runs the StepWords
// fast path they use now — the two ends of the hot-path migration.
func runRTLCycles(sim *rtl.Simulator, d *hls.Design, cycles int) {
	r := rand.New(rand.NewSource(9))
	if sim.Backend() == "compiled" {
		inPorts := sim.InputPorts()
		inw := make([]uint64, len(inPorts))
		for k := 0; k < cycles; k++ {
			for i := range inw {
				inw[i] = r.Uint64()
			}
			sim.StepWords(inw, nil)
		}
		return
	}
	in := map[string]uint64{}
	for k := 0; k < cycles; k++ {
		for _, p := range d.Inputs {
			in[p.Name] = r.Uint64()
		}
		sim.Step(in)
	}
}

func benchRTL(b *testing.B, backend rtl.Backend) {
	for _, d := range rtlBenchDesigns() {
		b.Run(d.Name, func(b *testing.B) {
			nl := rtlBenchNetlist(d)
			sim, err := rtl.NewSimulatorBackend(nl, backend)
			if err != nil {
				b.Fatal(err)
			}
			comb, _ := nl.CellCount()
			b.ResetTimer()
			runRTLCycles(sim, d, b.N)
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(comb), "ns/cell-cycle")
		})
	}
}

func BenchmarkRTLInterp(b *testing.B)   { benchRTL(b, rtl.BackendInterp) }
func BenchmarkRTLCompiled(b *testing.B) { benchRTL(b, rtl.BackendCompiled) }

// TestRTLPerfGate is the regression gate for the compiled hot path,
// modeled on PARTITION_PERF_GATE: opt-in via RTL_PERF_GATE=1 because
// wall-clock throughput is machine-dependent. It fails when the
// compiled backend falls under minSpeedup× the interpreter on any
// bench design. The floor sits well below the 5-9× a quiet machine
// records in BENCH_rtl.json: its job is to catch a silent fallback to
// the interpreter (ratio ~1×) or a gross regression, without flaking
// on loaded single-vCPU CI hosts where the ratio compresses.
func TestRTLPerfGate(t *testing.T) {
	if os.Getenv("RTL_PERF_GATE") == "" {
		t.Skip("set RTL_PERF_GATE=1 to run the throughput gate")
	}
	const minSpeedup = 2.0
	for _, d := range rtlBenchDesigns() {
		nl := rtlBenchNetlist(d)
		measure := func(backend rtl.Backend) float64 {
			sim, err := rtl.NewSimulatorBackend(nl, backend)
			if err != nil {
				t.Fatal(err)
			}
			if backend == rtl.BackendCompiled && sim.Backend() != "compiled" {
				t.Fatalf("%s: compiled backend not selected", d.Name)
			}
			comb, _ := nl.CellCount()
			cycles := 4000000 / (comb + 1)
			if cycles < 200 {
				cycles = 200
			}
			runRTLCycles(sim, d, cycles/4) // warmup
			best := 0.0
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				runRTLCycles(sim, d, cycles)
				if cps := float64(cycles) / time.Since(start).Seconds(); cps > best {
					best = cps
				}
			}
			return best
		}
		interp := measure(rtl.BackendInterp)
		compiled := measure(rtl.BackendCompiled)
		ratio := compiled / interp
		fmt.Printf("rtl perf gate: %-12s interp %9.0f cycles/sec, compiled %9.0f cycles/sec (%.1fx)\n",
			d.Name, interp, compiled, ratio)
		if ratio < minSpeedup {
			t.Errorf("%s: compiled/interp = %.2fx, gate requires >= %.1fx", d.Name, ratio, minSpeedup)
		}
	}
}
