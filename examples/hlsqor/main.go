// HLS QoR: the paper's §2.4 crossbar case study through the full flow.
//
// Both codings of the same crossbar function — the naive src-loop and
// the MatchLib dst-loop — are compiled, synthesized, equivalence-checked
// against the golden model, and compared on gates, timing, scheduler
// effort, and power. The structural Verilog of the small configuration
// is written next to the binary.
//
//	go run ./examples/hlsqor
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hls"
)

func main() {
	flow := core.DefaultFlow()

	fmt.Println("Crossbar case study (§2.4): identical function, two codings")
	for _, lanes := range []int{8, 16, 32} {
		src, err := flow.Run(hls.CrossbarSrcLoopDesign(lanes, 32), 20, 1)
		check(err)
		dst, err := flow.Run(hls.CrossbarDstLoopDesign(lanes, 32), 20, 1)
		check(err)
		fmt.Printf("  %2d lanes: src-loop %6d gates @ %4.0f MHz (%5d sched steps) | dst-loop %6d gates @ %4.0f MHz (%5d steps) | area penalty %+.1f%%\n",
			lanes, src.Area.GateCount, src.Timing.FmaxMHz, src.Steps,
			dst.Area.GateCount, dst.Timing.FmaxMHz, dst.Steps,
			100*(float64(src.Area.GateCount)-float64(dst.Area.GateCount))/float64(dst.Area.GateCount))
	}

	fmt.Println("\nFull QoR table (§2.2):")
	rows, err := core.QoRTable(flow)
	check(err)
	core.PrintQoRTable(os.Stdout, rows)

	rep, err := flow.Run(hls.CrossbarDstLoopDesign(4, 8), 20, 1)
	check(err)
	const out = "xbar_dst_4x8.v"
	check(os.WriteFile(out, []byte(rep.Netlist.Verilog()), 0o644))
	fmt.Printf("\nwrote %s (%d gates, verified on %d vectors)\n", out, rep.Area.GateCount, rep.VectorsChecked)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hlsqor:", err)
		os.Exit(1)
	}
}
