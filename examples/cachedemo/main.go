// Cache demo: the MatchLib configurable cache (Table 2) in a memory
// hierarchy experiment.
//
// A core model issues a mixed access pattern (sequential scans, strided
// walks, hot-set reuse, random traffic) against caches of different
// geometries backed by a slow SimpleMemory, and reports hit rate and
// average memory access time — the kind of architectural exploration the
// paper's flow does before committing to hardware parameters.
//
//	go run ./examples/cachedemo
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/connections"
	"repro/internal/matchlib"
	"repro/internal/sim"
)

func runGeometry(capWords, lineWords, ways, memLatency int) (hitPct, amat float64) {
	s := sim.New()
	clk := s.AddClock("clk", 909, 0)
	c := matchlib.NewCache(clk, "l1", capWords, lineWords, ways)
	m := matchlib.NewSimpleMemory(clk, "dram", 1<<14, lineWords, memLatency)
	connections.Buffer(clk, "q", 2, c.MemQ, m.Req)
	connections.Buffer(clk, "p", 2, m.Rsp, c.MemP)

	reqOut := connections.NewOut[matchlib.CacheReq]()
	rspIn := connections.NewIn[matchlib.CacheResp]()
	connections.Buffer(clk, "req", 2, reqOut, c.Req)
	connections.Buffer(clk, "rsp", 2, c.Rsp, rspIn)

	// The access pattern: three phases repeated.
	r := rand.New(rand.NewSource(7))
	var prog []int
	for rep := 0; rep < 4; rep++ {
		for a := 0; a < 256; a++ { // sequential scan
			prog = append(prog, a)
		}
		for a := 0; a < 64; a++ { // hot set reuse
			prog = append(prog, 4096+a%32)
		}
		for i := 0; i < 128; i++ { // strided walk
			prog = append(prog, (i*17)%2048+8192)
		}
		for i := 0; i < 64; i++ { // random
			prog = append(prog, r.Intn(1<<14))
		}
	}

	var totalLatency uint64
	clk.Spawn("core", func(th *sim.Thread) {
		for _, a := range prog {
			start := th.Cycle()
			reqOut.Push(th, matchlib.CacheReq{Addr: a})
			rspIn.Pop(th)
			totalLatency += th.Cycle() - start
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)

	st := c.Stats()
	return 100 * float64(st.Hits) / float64(st.Hits+st.Misses),
		float64(totalLatency) / float64(len(prog))
}

func main() {
	fmt.Println("MatchLib cache exploration (mixed scan/reuse/stride/random workload, 30-cycle memory):")
	fmt.Printf("%-28s %10s %10s\n", "geometry", "hit rate", "AMAT")
	for _, g := range []struct {
		cap, line, ways int
		label           string
	}{
		{256, 4, 1, "1KB  direct, 16B lines"},
		{256, 4, 4, "1KB  4-way,  16B lines"},
		{1024, 4, 1, "4KB  direct, 16B lines"},
		{1024, 4, 4, "4KB  4-way,  16B lines"},
		{1024, 16, 4, "4KB  4-way,  64B lines"},
		{4096, 8, 8, "16KB 8-way,  32B lines"},
	} {
		hit, amat := runGeometry(g.cap, g.line, g.ways, 30)
		fmt.Printf("%-28s %9.1f%% %9.1f cycles\n", g.label, hit, amat)
	}
}
