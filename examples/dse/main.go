// Design-space exploration: the same source, many implementations.
//
// The paper's §2.2 argues that decoupling functionality from constraints
// lets HLS explore implementations "without changing source code or
// using generator-based approaches". This example sweeps the clock
// constraint and the multiplier budget for one FIR description and
// prints the resulting pareto of frequency, pipeline depth, gates, and
// power — every point equivalence-checked against the golden model.
//
//	go run ./examples/dse
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hls"
)

func main() {
	fmt.Println("One FIR-16 source, swept over constraints (every point verified):")
	fmt.Printf("%-22s %8s %7s %8s %9s %9s\n", "constraints", "fmax", "stages", "gates", "regs", "power")
	for _, pt := range []struct {
		clock, muls int
	}{
		{100000, 0}, // combinational
		{2000, 0},
		{1200, 0},
		{700, 0},
		{450, 0},
		{1200, 8},
		{1200, 4},
		{1200, 2},
	} {
		flow := core.DefaultFlow()
		flow.Cons.ClockPS = pt.clock
		flow.Cons.MaxMuls = pt.muls
		rep, err := flow.Run(hls.FIRDesign(16, 16), 12, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dse:", err)
			os.Exit(1)
		}
		label := fmt.Sprintf("clock=%dps", pt.clock)
		if pt.clock == 100000 {
			label = "combinational"
		}
		if pt.muls > 0 {
			label += fmt.Sprintf(" muls=%d", pt.muls)
		}
		fmt.Printf("%-22s %5.0fMHz %7d %8d %9d %8.2fmW\n",
			label, rep.Timing.FmaxMHz, rep.Stages, rep.Area.GateCount,
			rep.Area.ByKind[9], rep.Power.TotalMW)
	}
	fmt.Println("\nDeeper pipelines buy frequency with flops; multiplier budgets")
	fmt.Println("stretch the schedule instead — all from one unchanged description.")
}
