// Rate-analysis demo: static communication-rate checking before a
// single cycle simulates.
//
// A three-stage pipeline — a DMA-style burst producer, a serializing
// link, and a downsampling filter — is elaborated twice. The first
// build declares honest SDF rates everywhere and passes with sized
// buffers and tight throughput bounds; the second narrows a FIFO below
// the burst size and mis-rates the feedback path, and the analysis
// pinpoints both before any simulation runs.
//
//	go run ./examples/ratedemo
package main

import (
	"fmt"
	"os"

	"repro/internal/connections"
	"repro/internal/ratecheck"
	"repro/internal/sim"
)

// pipeline elaborates the design graph only — no threads, no Run. The
// rate analysis needs nothing but the declarations.
func pipeline(linkDepth int, fbNum int64) *sim.Simulator {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	d := s.Design()

	// dma bursts 4 words per firing, one firing every 4 cycles.
	d.DeclareActor("dma", sim.ActorSDF, clk, sim.NewRat(1, 4))
	dmaOut := connections.NewOut[uint64]().Owned(clk, "dma", "out").Rated(4, 1)

	// The filter consumes words one at a time, every cycle, and emits
	// one result per 4 inputs, plus a credit token back to the DMA.
	d.DeclareActor("filter", sim.ActorSDF, clk, sim.NewRat(1, 1))
	fIn := connections.NewIn[uint64]().Owned(clk, "filter", "in").Rated(1, 1)
	fOut := connections.NewOut[uint64]().Owned(clk, "filter", "out").Rated(1, 4)
	fCredit := connections.NewOut[uint64]().Owned(clk, "filter", "credit").Rated(fbNum, 4)

	d.DeclareActor("sink", sim.ActorSDF, clk, sim.Rat{})
	sIn := connections.NewIn[uint64]().Owned(clk, "sink", "in").Rated(1, 1)
	dmaCredit := connections.NewIn[uint64]().Owned(clk, "dma", "credit").Rated(1, 1)

	connections.Buffer(clk, "burst", linkDepth, dmaOut, fIn)
	connections.Buffer(clk, "result", 2, fOut, sIn)
	connections.Buffer(clk, "credit", 2, fCredit, dmaCredit)
	return s
}

func report(title string, s *sim.Simulator) *ratecheck.Result {
	fmt.Printf("--- %s ---\n", title)
	r := ratecheck.Check(s)
	r.WriteTree(os.Stdout)
	fmt.Println()
	return r
}

func main() {
	fmt.Println("Static communication-rate analysis (SDF balance + buffer sizing):")
	fmt.Println()

	// Honest declarations: a 4-word burst into a 4-slot FIFO, and the
	// credit loop returning 1 token per filter iteration (1/4 per input
	// word x 4 words per DMA firing = balanced).
	good := report("declared rates, sized buffers", pipeline(4, 1))
	if good.Err() != nil {
		panic("the clean pipeline should pass")
	}

	// The same pipeline with a 2-slot burst FIFO (RATE-3: one firing
	// bursts past the buffer) and a doubled credit rate (RATE-1: the
	// feedback cycle's balance equations no longer close).
	bad := report("narrowed FIFO, mis-rated credit loop", pipeline(2, 2))
	if err := bad.Err(); err != nil {
		fmt.Printf("gate result: %v\n", err)
	}
}
