// GALS demo: fine-grained globally-asynchronous locally-synchronous
// clocking (§3.1).
//
// Two partitions run on independent, deliberately near-aliased clocks.
// Data crosses through a pausible bisynchronous FIFO and through a
// brute-force two-flop-synchronizer FIFO; both are error-free, but the
// pausible design crosses with far lower latency, occasionally
// stretching the receiver clock. The adaptive-clock margin experiment
// and the <3% area-overhead table follow.
//
//	go run ./examples/galsdemo
package main

import (
	"fmt"

	"repro/internal/gals"
	"repro/internal/sim"
)

func crossing(pausible bool) {
	s := sim.New()
	tx := s.AddClock("tx", 1000, 0)
	rx := s.AddClock("rx", 1007, 13) // 0.7% frequency offset: worst-case CDC

	const n = 2000
	var push func(th *sim.Thread, v int)
	var pop func(th *sim.Thread) int
	var pausesFn func() uint64
	if pausible {
		f := gals.NewPausibleBisyncFIFO[int](s, "pf", tx, rx, 4, 40)
		push, pop = f.Push, f.Pop
		pausesFn = func() uint64 { return f.Pauses }
	} else {
		f := gals.NewBruteForceSyncFIFO[int](s, "bf", tx, rx, 4)
		push, pop = f.Push, f.Pop
		pausesFn = func() uint64 { return 0 }
	}

	// Lightly loaded traffic: latency then reflects the synchronizer,
	// not queueing.
	var latSum, got sim.Time
	sendTime := make([]sim.Time, n)
	tx.Spawn("producer", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			sendTime[i] = s.Now()
			push(th, i)
			th.WaitN(4)
		}
	})
	rx.Spawn("consumer", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			v := pop(th)
			if v != i {
				panic("loss/dup/reorder across clock domains")
			}
			latSum += s.Now() - sendTime[v]
			got++
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)

	name := "brute-force 2-flop FIFO"
	if pausible {
		name = "pausible bisync FIFO  "
	}
	fmt.Printf("  %s: %d msgs error-free, mean crossing latency %5.0f ps, %d receiver-clock pauses\n",
		name, got, float64(latSum)/float64(got), pausesFn())
}

func main() {
	fmt.Println("Clock-domain crossing, tx=1.000 GHz vs rx=0.993 GHz:")
	crossing(true)
	crossing(false)

	fmt.Println("\nAdaptive local clock generation under 10% supply droop:")
	e := gals.RunMarginExperiment(900, 0.10, 5_000_000, 3)
	fmt.Printf("  fixed-margin clock: %6.1f MHz\n  adaptive clock:     %6.1f MHz (+%.1f%% recovered)\n",
		e.FixedMHz, e.AdaptiveMHz, e.GainPct)

	fmt.Println("\nGALS area overhead by partition size (paper: <3% for typical partitions):")
	for _, g := range []int{100_000, 300_000, 500_000, 1_000_000, 2_000_000} {
		fmt.Printf("  %v\n", gals.GALSOverhead(g, 2))
	}

	fmt.Println("\nWhy 'error-free' matters — brute-force synchronizer MTBF at 1.1 GHz:")
	const year = 365.25 * 24 * 3600
	for n := 1; n <= 3; n++ {
		mtbf := gals.SyncMTBF(n, 909, 3636)
		fmt.Printf("  %d-flop: %10.3g years (pausible clocking: no failure mode at all)\n", n, mtbf/year)
	}
}
