// NoC demo: a 4×4 wormhole mesh under random traffic.
//
// Builds the MatchLib WHVC-router mesh, drives uniform-random packet
// traffic from every node, and reports delivered packets, latency, and
// router statistics — then repeats with stall injection on every link to
// demonstrate timing perturbation without functional change (§2.3).
//
//	go run ./examples/nocdemo
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/connections"
	"repro/internal/noc"
	"repro/internal/sim"
)

func run(label string, opts ...connections.Option) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	const w, h, pktsPerNode = 4, 4, 30
	m := noc.BuildMesh(clk, "m", w, h, 2, 4, opts...)
	n := w * h

	type key struct{ id uint64 }
	sent := map[uint64]uint64{} // packet id -> inject cycle
	var totalLatency, delivered uint64

	r := rand.New(rand.NewSource(42))
	var id uint64
	for src := 0; src < n; src++ {
		src := src
		var pkts []noc.Packet
		for k := 0; k < pktsPerNode; k++ {
			dst := r.Intn(n)
			if dst == src {
				dst = (dst + 1) % n
			}
			pkts = append(pkts, noc.Packet{Src: src, Dst: dst, ID: id, Payload: []uint64{uint64(k), uint64(src)}})
			id++
		}
		clk.Spawn(fmt.Sprintf("gen%d", src), func(th *sim.Thread) {
			for _, p := range pkts {
				m.Inject[src].Push(th, p)
				sent[p.ID] = th.Cycle()
				th.Wait()
			}
		})
	}
	total := int(id)
	for dst := 0; dst < n; dst++ {
		dst := dst
		clk.Spawn(fmt.Sprintf("sink%d", dst), func(th *sim.Thread) {
			for {
				if p, ok := m.Eject[dst].PopNB(th); ok {
					totalLatency += th.Cycle() - sent[p.ID]
					delivered++
					if delivered == uint64(total) {
						th.Sim().Stop()
					}
				}
				th.Wait()
			}
		})
	}
	s.Run(1_000_000_000)

	var flits, stalls uint64
	for _, rt := range m.Routers {
		flits += rt.Stats.FlitsOut
		stalls += rt.Stats.Stalls
	}
	fmt.Printf("%-22s delivered %3d/%3d packets in %5d cycles; mean latency %5.1f; %5d flit-hops, %4d back-pressure stalls\n",
		label, delivered, total, clk.Cycle(), float64(totalLatency)/float64(delivered), flits, stalls)
}

func main() {
	run("clean links")
	run("25% stall injection", connections.WithStall(0.25, 0.25, 7))
	run("RTL-cosim channels", connections.WithMode(connections.ModeRTLCosim))
}
