// Quickstart: the Connections latency-insensitive channel API.
//
// A producer and a consumer are written once against the polymorphic
// In/Out ports; the integration chooses the channel kind, simulation
// model, retiming latency, and stall injection at bind time without
// touching either module — the core idea of the paper's §2.3.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/sim"
)

// produce pushes n tokens; it knows nothing about the channel behind out.
func produce(th *sim.Thread, out *connections.Out[int], n int) {
	for i := 0; i < n; i++ {
		out.Push(th, i*i)
		th.Wait()
	}
}

// consume pops n tokens.
func consume(th *sim.Thread, in *connections.In[int], n int) {
	for i := 0; i < n; i++ {
		v := in.Pop(th)
		if v != i*i {
			panic(fmt.Sprintf("got %d, want %d", v, i*i))
		}
		th.Wait()
	}
	th.Sim().Stop()
}

func run(kind connections.Kind, opts ...connections.Option) (cycles uint64, st connections.Stats) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := connections.NewOut[int](), connections.NewIn[int]()
	ch := connections.Bind(clk, "ch", kind, 4, out, in, opts...)

	const n = 200
	clk.Spawn("producer", func(th *sim.Thread) { produce(th, out, n) })
	clk.Spawn("consumer", func(th *sim.Thread) { consume(th, in, n) })
	s.Run(sim.Infinity - 1)
	return clk.Cycle(), ch.Stats()
}

func main() {
	fmt.Println("Same producer/consumer code, different channels at integration time:")
	for _, kind := range []connections.Kind{
		connections.KindCombinational, connections.KindBypass,
		connections.KindPipeline, connections.KindBuffer,
	} {
		cycles, st := run(kind)
		fmt.Printf("  %-14s  %4d cycles for %d transfers (mean occupancy %.2f)\n",
			kind, cycles, st.Transfers, st.MeanOccupancy())
	}

	cycles, _ := run(connections.KindBuffer, connections.WithLatency(6))
	fmt.Printf("  %-14s  %4d cycles with 6 retiming registers added for floorplanning\n", "Buffer+retime", cycles)

	cycles, st := run(connections.KindBuffer, connections.WithStall(0.4, 0.4, 99))
	fmt.Printf("  %-14s  %4d cycles under 40%% stall injection — still %d/%d correct transfers\n",
		"Buffer+stalls", cycles, st.Transfers, 200)

	cycles, _ = run(connections.KindBuffer, connections.WithMode(connections.ModeSignalAccurate))
	fmt.Printf("  %-14s  %4d cycles under the signal-accurate model (each port op serializes)\n",
		"signal-acc", cycles)
}
