// Accelerator: run a convolution layer on the prototype SoC.
//
// This is the paper's Figure 5 system end to end: the RISC-V controller
// executes real RV32I firmware that DMAs a signal from global memory to
// the 16 PE scratchpads over the wormhole NoC, launches the vector
// convolution kernels, gathers the outputs, and reports. The same chip
// is then re-run with fine-grained GALS clocking (20 independent clock
// generators, pausible bisynchronous FIFOs on every crossing) to show
// identical results, and an architectural power estimate is produced.
//
//	go run ./examples/accelerator
package main

import (
	"fmt"
	"time"

	"repro/internal/power"
	"repro/internal/soc"
)

func main() {
	tc := soc.Tests()[3] // conv1d

	for _, galsOn := range []bool{false, true} {
		cfg := soc.DefaultConfig()
		cfg.GALS = galsOn
		s, verify := tc.Build(cfg)
		start := time.Now()
		cycles, err := s.Run(10_000_000)
		if err != nil {
			panic(err)
		}
		if err := verify(s); err != nil {
			panic(err)
		}
		style := "single-clock"
		if galsOn {
			style = fmt.Sprintf("fine-grained GALS (%d domains, %d clock pauses)", len(s.Clks), s.Pauses())
		}
		fmt.Printf("conv1d on the 16-PE SoC [%s]\n", style)
		fmt.Printf("  %d controller cycles, %d instructions retired, wall %s\n",
			cycles, s.RV.CPU.Instret, time.Since(start).Round(time.Millisecond))

		var kernels, pktIn uint64
		for _, pe := range s.PEs {
			kernels += pe.Stats.Kernels
			pktIn += pe.Stats.PacketsIn
		}
		fmt.Printf("  PE array: %d kernels executed, %d packets delivered\n", kernels, pktIn)

		if !galsOn {
			// Architectural power estimate from the activity counters:
			// each PE partition is ~280K gates with datapath activity
			// proportional to its busy fraction.
			reads, writes := s.GML.Mem.Accesses()
			rep := power.Default16nm.FromActivity("soc-conv1d", 16*280_000+2*350_000, 0.08, 1100,
				reads, writes, cycles)
			fmt.Printf("  power estimate: %v\n", rep)
		}
		fmt.Println()
	}
}
