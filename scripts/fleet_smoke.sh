#!/bin/sh
# fleet_smoke.sh — end-to-end smoke test of the socgw fleet.
#
# Builds the real socgw, socd, and socctl binaries, boots a gateway
# plus three workers on ephemeral ports, and drives the fleet through
# the client API exactly like a lone daemon: jobs land on workers by
# content hash, a worker killed mid-batch triggers failover with zero
# lost jobs, and every result is byte-identical to a single-daemon run
# of the same specs. Run via `make fleet-smoke`.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

fail() {
	echo "fleet-smoke: FAIL: $*" >&2
	echo "--- socgw stderr ---" >&2
	cat "$WORK/socgw.err" >&2 || true
	for w in w1 w2 w3; do
		echo "--- $w stderr ---" >&2
		cat "$WORK/$w.err" >&2 || true
	done
	exit 1
}

"$GO" build -o "$WORK/socgw" ./cmd/socgw
"$GO" build -o "$WORK/socd" ./cmd/socd
"$GO" build -o "$WORK/socctl" ./cmd/socctl

# Gateway with fast failover timings so the kill/restart cycle is quick.
"$WORK/socgw" -addr 127.0.0.1:0 -worker-addr 127.0.0.1:0 -dead-after 2s \
	>"$WORK/socgw.out" 2>"$WORK/socgw.err" &
GW_PID=$!
PIDS="$PIDS $GW_PID"

# Stdout lines 1-2 are "listening on <addr>" / "workers on <addr>".
ADDR= WADDR=
for _ in $(seq 1 50); do
	ADDR=$(sed -n 's/^listening on //p' "$WORK/socgw.out" 2>/dev/null)
	WADDR=$(sed -n 's/^workers on //p' "$WORK/socgw.out" 2>/dev/null)
	[ -n "$ADDR" ] && [ -n "$WADDR" ] && break
	sleep 0.1
done
[ -n "$ADDR" ] && [ -n "$WADDR" ] || fail "socgw never printed its addresses"
CTL="$WORK/socctl -addr $ADDR"

start_worker() { # $1 = name
	"$WORK/socd" -addr 127.0.0.1:0 -workers 2 -gateway "$WADDR" -name "$1" \
		-heartbeat 200ms >"$WORK/$1.out" 2>"$WORK/$1.err" &
	eval "${1}_PID=\$!"
	eval "PIDS=\"\$PIDS \$${1}_PID\""
}
start_worker w1
start_worker w2
start_worker w3

# Wait for the full roster.
for _ in $(seq 1 50); do
	N=$($CTL workers 2>/dev/null | grep -c '"name"') || N=0
	[ "$N" -eq 3 ] && break
	sleep 0.1
done
[ "$N" -eq 3 ] || fail "fleet never reached 3 workers (got $N)"

# Batch 1: a spread of specs through the gateway.
SPECS='{"kind":"sim","test":"memcpy"}
{"kind":"sim","test":"vecadd"}
{"kind":"lint","test":"badcdc"}
{"kind":"stallhunt","stall":0.3,"messages":60,"seeds":2,"seed":11}
{"kind":"stallhunt","stall":0.3,"messages":60,"seeds":2,"seed":12}
{"kind":"stallhunt","stall":0.3,"messages":60,"seeds":2,"seed":13}'
i=0
echo "$SPECS" | while read -r spec; do
	i=$((i + 1))
	$CTL submit -spec "$spec" -wait >"$WORK/fleet$i.json" \
		|| fail "fleet submission $i failed"
done

# Kill one worker mid-campaign: launch a slow-ish batch, kill w2 while
# it runs, and require every job to complete anyway (failover).
for s in 21 22 23 24; do
	$CTL submit -spec "{\"kind\":\"stallhunt\",\"stall\":0.3,\"messages\":80,\"seeds\":3,\"seed\":$s}" \
		-wait >"$WORK/failover$s.json" &
	eval "J${s}_PID=\$!"
done
sleep 0.3
kill -9 "$w2_PID" 2>/dev/null || true # crash, not drain: the gateway must notice on its own
for s in 21 22 23 24; do
	eval "wait \"\$J${s}_PID\"" || fail "job seed=$s lost after worker kill"
	grep -q '"bug_seeds"' "$WORK/failover$s.json" || fail "job seed=$s returned no result body"
done

# Restart the dead worker under its old name; the roster must heal.
start_worker w2
for _ in $(seq 1 50); do
	N=$($CTL workers 2>/dev/null | grep -c '"name"') || N=0
	[ "$N" -eq 3 ] && break
	sleep 0.1
done
[ "$N" -eq 3 ] || fail "fleet did not heal to 3 workers after restart (got $N)"

# Failover counters must show the death was seen and handled.
$CTL metrics >"$WORK/metrics.json" || fail "metrics fetch failed"
grep -q '"path":"fleet/failover","name":"worker_deaths","value":[1-9]' "$WORK/metrics.json" \
	|| fail "fleet/failover worker_deaths not incremented"

# Byte-identity: rerun batch 1 against a lone socd and compare bodies.
"$WORK/socd" -addr 127.0.0.1:0 -workers 2 >"$WORK/solo.out" 2>"$WORK/solo.err" &
SOLO_PID=$!
PIDS="$PIDS $SOLO_PID"
SOLO_ADDR=
for _ in $(seq 1 50); do
	SOLO_ADDR=$(head -n 1 "$WORK/solo.out" 2>/dev/null | sed -n 's/^listening on //p')
	[ -n "$SOLO_ADDR" ] && break
	sleep 0.1
done
[ -n "$SOLO_ADDR" ] || fail "solo socd never printed its listen address"
i=0
echo "$SPECS" | while read -r spec; do
	i=$((i + 1))
	"$WORK/socctl" -addr "$SOLO_ADDR" submit -spec "$spec" -wait >"$WORK/solo$i.json" \
		|| fail "solo submission $i failed"
	cmp -s "$WORK/fleet$i.json" "$WORK/solo$i.json" \
		|| fail "fleet result $i not byte-identical to single daemon ($spec)"
done

# Graceful drain: SIGTERM must exit cleanly within budget.
kill -TERM "$GW_PID"
i=0
while kill -0 "$GW_PID" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -le 100 ] || fail "socgw did not drain within 10s of SIGTERM"
	sleep 0.1
done
wait "$GW_PID" || fail "socgw exited non-zero after SIGTERM"
grep -q "drained, exiting" "$WORK/socgw.err" || fail "gateway drain log line missing"

echo "fleet-smoke: PASS (socgw at $ADDR: 3 workers, failover, byte-identical, drain)"
