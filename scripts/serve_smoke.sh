#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the socd job daemon.
#
# Builds the real socd and socctl binaries, boots the daemon on an
# ephemeral port, drives it over the network like a client would —
# lint job, sim job, cache-hit resubmission — and checks the metrics
# endpoint and graceful SIGTERM drain. Run via `make serve-smoke`.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
trap 'kill "$SOCD_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() {
	echo "serve-smoke: FAIL: $*" >&2
	echo "--- socd stderr ---" >&2
	cat "$WORK/socd.err" >&2 || true
	exit 1
}

"$GO" build -o "$WORK/socd" ./cmd/socd
"$GO" build -o "$WORK/socctl" ./cmd/socctl

"$WORK/socd" -addr 127.0.0.1:0 -workers 2 >"$WORK/socd.out" 2>"$WORK/socd.err" &
SOCD_PID=$!

# First stdout line is "listening on <host:port>".
ADDR=
for _ in $(seq 1 50); do
	ADDR=$(head -n 1 "$WORK/socd.out" 2>/dev/null | sed -n 's/^listening on //p')
	[ -n "$ADDR" ] && break
	sleep 0.1
done
[ -n "$ADDR" ] || fail "socd never printed its listen address"
CTL="$WORK/socctl -addr $ADDR"

# Lint job: the badcdc fixture must surface its CDC-1 error diagnostic.
$CTL submit -kind lint -test badcdc -wait >"$WORK/lint.json" \
	|| fail "lint submission failed"
grep -q '"CDC-1"' "$WORK/lint.json" || fail "lint result missing CDC-1"

# Sim job twice: identical results, second served from the cache.
$CTL submit -kind sim -test memcpy -wait >"$WORK/sim1.json" \
	|| fail "sim submission failed"
grep -q '"status": "PASS"' "$WORK/sim1.json" || fail "sim did not PASS"
$CTL submit -kind sim -test memcpy -wait >"$WORK/sim2.json" \
	|| fail "sim resubmission failed"
cmp -s "$WORK/sim1.json" "$WORK/sim2.json" \
	|| fail "cached sim result not byte-identical"

# Metrics must show exactly one cache hit and three submissions.
$CTL metrics >"$WORK/metrics.json" || fail "metrics fetch failed"
grep -q '{"path":"serve/cache","name":"hits","value":1}' "$WORK/metrics.json" \
	|| fail "serve/cache hits != 1"
grep -q '{"path":"serve/jobs","name":"submitted","value":3}' "$WORK/metrics.json" \
	|| fail "serve/jobs submitted != 3"
$CTL health >/dev/null || fail "healthz not ok"

# Graceful drain: SIGTERM must exit cleanly (status 0) within budget.
kill -TERM "$SOCD_PID"
i=0
while kill -0 "$SOCD_PID" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -le 100 ] || fail "socd did not drain within 10s of SIGTERM"
	sleep 0.1
done
wait "$SOCD_PID" || fail "socd exited non-zero after SIGTERM"
grep -q "drained, exiting" "$WORK/socd.err" || fail "drain log line missing"

echo "serve-smoke: PASS (socd at $ADDR: lint, sim, cache hit, drain)"
