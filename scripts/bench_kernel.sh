#!/bin/sh
# bench_kernel.sh — regenerate the BENCH_kernel.json measurements.
#
# Runs the SoC system-test benchmarks (BenchmarkSoC*) on the sequential
# event kernel and prints the cycles / cycles-per-sec / edges-per-sec
# columns to paste into BENCH_kernel.json. The cycles column must match
# the recorded values exactly on any host (it is simulated time, a
# determinism guard); the rate columns are wall-clock and belong with a
# fresh "host"/"recorded" stanza when they move materially.
#
# Usage: scripts/bench_kernel.sh [benchtime]   (default 5x)
set -eu

GO=${GO:-go}
BENCHTIME=${1:-5x}

cd "$(dirname "$0")/.."
exec "$GO" test -run xxx -bench 'BenchmarkSoC' -benchtime "$BENCHTIME" .
