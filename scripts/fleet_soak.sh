#!/bin/sh
# fleet_soak.sh — sustained-load soak of the socgw fleet with chaos.
#
# Boots a gateway plus three workers, runs cmd/socsoak against it
# (rounds of concurrent jobs, byte-identity cross-checked across
# rounds), and kills + restarts a worker in the middle of the soak.
# socsoak exits nonzero on any lost job or result mismatch, so this
# script is a direct assertion of the fleet's two invariants under
# churn. Heavier than fleet_smoke.sh; run on demand:
#
# The soak's completed-job throughput is written to BENCH_fleet.json
# (override with BENCH_JSON=path) so soak runs leave a trendable
# figure of merit behind, not just a pass/fail.
#
#	scripts/fleet_soak.sh              # default 5 rounds
#	ROUNDS=20 scripts/fleet_soak.sh    # longer soak
set -eu

GO=${GO:-go}
ROUNDS=${ROUNDS:-5}
BENCH_JSON=${BENCH_JSON:-BENCH_fleet.json}
WORK=$(mktemp -d)
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

fail() {
	echo "fleet-soak: FAIL: $*" >&2
	echo "--- socgw stderr ---" >&2
	cat "$WORK/socgw.err" >&2 || true
	exit 1
}

"$GO" build -o "$WORK/socgw" ./cmd/socgw
"$GO" build -o "$WORK/socd" ./cmd/socd
"$GO" build -o "$WORK/socctl" ./cmd/socctl
"$GO" build -o "$WORK/socsoak" ./cmd/socsoak

"$WORK/socgw" -addr 127.0.0.1:0 -worker-addr 127.0.0.1:0 -dead-after 2s \
	>"$WORK/socgw.out" 2>"$WORK/socgw.err" &
GW_PID=$!
PIDS="$PIDS $GW_PID"

ADDR= WADDR=
for _ in $(seq 1 50); do
	ADDR=$(sed -n 's/^listening on //p' "$WORK/socgw.out" 2>/dev/null)
	WADDR=$(sed -n 's/^workers on //p' "$WORK/socgw.out" 2>/dev/null)
	[ -n "$ADDR" ] && [ -n "$WADDR" ] && break
	sleep 0.1
done
[ -n "$ADDR" ] && [ -n "$WADDR" ] || fail "socgw never printed its addresses"

start_worker() { # $1 = name
	"$WORK/socd" -addr 127.0.0.1:0 -workers 2 -gateway "$WADDR" -name "$1" \
		-heartbeat 200ms >"$WORK/$1.out" 2>"$WORK/$1.err" &
	eval "${1}_PID=\$!"
	eval "PIDS=\"\$PIDS \$${1}_PID\""
}
start_worker w1
start_worker w2
start_worker w3

for _ in $(seq 1 50); do
	N=$("$WORK/socctl" -addr "$ADDR" workers 2>/dev/null | grep -c '"name"') || N=0
	[ "$N" -eq 3 ] && break
	sleep 0.1
done
[ "$N" -eq 3 ] || fail "fleet never reached 3 workers (got $N)"

# Chaos alongside the soak: kill w2 partway in, restart it later.
(
	sleep 3
	kill -9 "$w2_PID" 2>/dev/null || true
	echo "fleet-soak: killed w2 mid-soak"
	sleep 4
	"$WORK/socd" -addr 127.0.0.1:0 -workers 2 -gateway "$WADDR" -name w2 \
		-heartbeat 200ms >"$WORK/w2b.out" 2>"$WORK/w2b.err" &
	echo "fleet-soak: restarted w2"
	wait
) &
CHAOS_PID=$!
PIDS="$PIDS $CHAOS_PID"

"$WORK/socsoak" -addr "$ADDR" -rounds "$ROUNDS" -concurrency 8 \
	-bench-json "$BENCH_JSON" \
	|| fail "socsoak reported lost or mismatched jobs"

echo "fleet-soak: PASS ($ROUNDS rounds with mid-soak worker kill/restart; throughput in $BENCH_JSON)"
