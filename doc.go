// Package repro is a from-scratch Go reproduction of "A Modular Digital
// VLSI Flow for High-Productivity SoC Design" (Khailany et al., DAC 2018):
// the Connections latency-insensitive channel library, the MatchLib
// hardware-component library, an HLS-to-gates compilation flow with logic
// synthesis, static timing, and power analysis, fine-grained GALS
// clocking with pausible bisynchronous FIFOs, and the paper's 16-PE
// machine-learning prototype SoC with its RISC-V controller.
//
// The library packages live under internal/; the runnable entry points
// are the commands under cmd/ (socsim, flowrun, benchfig) and the
// programs under examples/. See README.md for a tour, DESIGN.md for the
// system inventory and substitutions, and EXPERIMENTS.md for the
// paper-versus-measured results.
package repro
