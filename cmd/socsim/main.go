// Command socsim runs the prototype SoC's system-level tests under the
// selected simulation model and clocking style, reporting elapsed cycles,
// wall time, and per-node traffic statistics — the workflow behind the
// paper's Figure 6 and §4 case study.
//
//	socsim -test conv1d -mode rtl
//	socsim -test all -gals
//	socsim -test vecadd -stall 0.2 -seed 3
//	socsim -test memcpy -gals -partitions 4   # partition-parallel, bit-identical
//	socsim -test memcpy -vcd out.vcd      # per-channel waveforms, GTKWave-ready
//	socsim -test memcpy -trace            # backpressure/deadlock report
//	socsim -test all -lint                # static design-rule check, no simulation
//	socsim -test all -rateck              # static communication-rate check, no simulation
//	socsim -test mcserdes -mc             # bounded model check, no simulation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/connections"
	"repro/internal/lint"
	"repro/internal/mc"
	"repro/internal/ratecheck"
	"repro/internal/soc"
	"repro/internal/trace"
)

func main() {
	testName := flag.String("test", "all", "SoC test: memcpy|vecadd|dot|conv1d|kmeans|maxpool|all")
	mode := flag.String("mode", "tlm", "channel model: tlm (sim-accurate) | signal | rtl")
	galsOn := flag.Bool("gals", false, "fine-grained GALS: one clock generator per partition")
	shadow := flag.Bool("shadow", false, "gate-level shadow cosimulation of PE datapaths (rtl mode)")
	stall := flag.Float64("stall", 0, "stall-injection probability on every channel")
	seed := flag.Int64("seed", 1, "stall-injection seed")
	statsF := flag.Bool("stats", false, "dump the full per-component metrics tree")
	statsJSON := flag.String("statsjson", "", "write the metrics snapshot as JSON to this file")
	powerF := flag.Bool("power", false, "print the architectural power breakdown")
	vcd := flag.String("vcd", "", "write a VCD waveform of every traced channel (valid/ready/occ, grouped by component scope) to this file")
	traceF := flag.Bool("trace", false, "arm channel tracing and print the per-channel backpressure/deadlock report")
	horizon := flag.Uint64("horizon", 1000, "deadlock bound for -trace, in cycles of each channel's clock")
	maxCycles := flag.Uint64("maxcycles", 10_000_000, "cycle budget")
	partitions := flag.Int("partitions", 0, "shard the clocks onto this many parallel workers (0 = sequential kernel; any N >= 1 gives bit-identical results)")
	lintF := flag.Bool("lint", false, "statically lint the selected designs (CDC/deadlock/connectivity rules) and exit without simulating")
	lintJSON := flag.String("lintjson", "", "write the combined lint diagnostics as JSON to this file (implies -lint)")
	rateF := flag.Bool("rateck", false, "statically check communication rates (SDF balance, buffer sizing, throughput bounds) and exit without simulating")
	rateJSON := flag.String("rateckjson", "", "write the combined rate diagnostics as JSON to this file (implies -rateck)")
	mcF := flag.Bool("mc", false, "bounded model check the selected designs (deadlock-freedom + sim/signal equivalence on the LI channel graph) and exit without simulating")
	mcJSON := flag.String("mcjson", "", "write the model-checking result as JSON to this file (implies -mc)")
	mcVCD := flag.String("mcvcd", "", "replay the first counterexample as a VCD waveform to this file (implies -mc)")
	mcDepth := flag.Int("mcdepth", 0, "unrolling bound for -mc (0 = default 64)")
	flag.Parse()

	cfg := soc.DefaultConfig()
	switch *mode {
	case "tlm":
		cfg.Mode = connections.ModeSimAccurate
	case "signal":
		cfg.Mode = connections.ModeSignalAccurate
	case "rtl":
		cfg.Mode = connections.ModeRTLCosim
	default:
		fmt.Fprintf(os.Stderr, "socsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	cfg.GALS = *galsOn
	cfg.ShadowNetlists = *shadow
	cfg.StallP = *stall
	cfg.StallSeed = *seed
	cfg.Partitions = *partitions
	cfg.Trace = *vcd != "" || *traceF

	if *lintJSON != "" {
		*lintF = true
	}
	if *lintF {
		os.Exit(runLint(cfg, *testName, *lintJSON))
	}
	if *rateJSON != "" {
		*rateF = true
	}
	if *rateF {
		os.Exit(runRateck(cfg, *testName, *rateJSON))
	}
	if *mcJSON != "" || *mcVCD != "" {
		*mcF = true
	}
	if *mcF {
		os.Exit(runMC(cfg, *testName, *mcJSON, *mcVCD, *mcDepth))
	}

	any := false
	for _, tc := range append(soc.Tests(), soc.ExtraTests()...) {
		if *testName != "all" && tc.Name != *testName {
			continue
		}
		any = true
		s, verify := tc.Build(cfg)
		start := time.Now()
		cycles, err := s.Run(*maxCycles)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "socsim: %s: %v\n", tc.Name, err)
			os.Exit(1)
		}
		status := "PASS"
		if err := verify(s); err != nil {
			status = fmt.Sprintf("FAIL (%v)", err)
		}
		fmt.Printf("%-8s %s  %8d cycles  %10s  %d instret", tc.Name, status, cycles,
			wall.Round(time.Millisecond), s.RV.CPU.Instret)
		if cfg.GALS {
			fmt.Printf("  %d clock pauses", s.Pauses())
		}
		if *vcd != "" {
			f, err := os.Create(*vcd)
			var samples, changes uint64
			if err == nil {
				samples, changes, err = s.Tracer().WriteVCD(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "socsim:", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s (%d samples, %d changes)", *vcd, samples, changes)
		}
		fmt.Println()
		var rep *trace.Report
		if cfg.Trace {
			rep = s.Tracer().Analyze(*horizon)
			// Trace-derived figures join the same registry the components
			// publish into, so -stats and -statsjson include them.
			rep.Publish(s.Sim.Metrics(), "trace")
		}
		if *traceF {
			fmt.Printf("channel trace: %d events on %d channels, %d suspects\n",
				rep.Events, len(rep.Channels), len(rep.Suspects))
			for _, line := range rep.Summary() {
				fmt.Println("  " + line)
			}
		}
		if *powerF {
			s.PowerEstimate(cycles, 1100).Print(os.Stdout)
		}
		// Every component registered itself into the simulator's metrics
		// registry during construction; the dump walks the whole tree.
		if *statsF {
			s.Sim.Metrics().Dump(os.Stdout)
		}
		if *statsJSON != "" {
			f, err := os.Create(*statsJSON)
			if err == nil {
				err = s.Sim.Metrics().WriteJSON(f)
			}
			if err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "socsim:", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n", *statsJSON)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "socsim: unknown test %q\n", *testName)
		os.Exit(2)
	}
}

// runLint builds each selected design and runs the static design-rule
// checker over its elaborated channel/clock graph; nothing is simulated.
// The deliberately broken fixtures (soc.LintFixtures) are selectable by
// exact name but excluded from "all", so "-test all -lint" asserts that
// every shipped design is hazard-free. The exit code is 1 when any
// selected design has an error-severity diagnostic.
func runLint(cfg soc.Config, testName, jsonPath string) int {
	cases := append(soc.Tests(), soc.ExtraTests()...)
	if testName != "all" {
		cases = append(cases, soc.LintFixtures()...)
	}
	any, failed := false, false
	var all []lint.Diag
	for _, tc := range cases {
		if testName != "all" && tc.Name != testName {
			continue
		}
		any = true
		s, _ := tc.Build(cfg)
		r := lint.Check(s.Sim)
		fmt.Printf("%s:\n", tc.Name)
		r.WriteTree(os.Stdout)
		if r.Errors() > 0 {
			failed = true
		}
		// The combined JSON dump roots each design's diagnostics under its
		// test name so one file can span "-test all".
		for _, d := range r.Diags {
			d.Path = tc.Name + "/" + d.Path
			all = append(all, d)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "socsim: unknown test %q\n", testName)
		return 2
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err == nil {
			err = lint.WriteDiagsJSON(f, all)
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "socsim:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if failed {
		return 1
	}
	return 0
}

// runMC builds each selected design and bounded-model-checks its
// latency-insensitive channel graph for deadlock-freedom and
// sim/signal-accurate equivalence; nothing is simulated. The clean
// examples (soc.MCExamples) and the seeded-bug fixtures
// (soc.MCFixtures) are selectable by exact name but excluded from
// "all", so "-test all -mc" asserts every shipped design's declared
// subgraph is safe within the bound. Exit code 1 when any selected
// design has an error-severity diagnostic.
func runMC(cfg soc.Config, testName, jsonPath, vcdPath string, depth int) int {
	cases := append(soc.Tests(), soc.ExtraTests()...)
	if testName != "all" {
		cases = append(cases, soc.MCExamples()...)
		cases = append(cases, soc.MCFixtures()...)
	}
	any, failed := false, false
	for _, tc := range cases {
		if testName != "all" && tc.Name != testName {
			continue
		}
		any = true
		s, _ := tc.Build(cfg)
		r := mc.Check(s.Sim, mc.Options{Depth: depth})
		fmt.Printf("%s:\n", tc.Name)
		r.WriteTree(os.Stdout)
		if r.Errors() > 0 {
			failed = true
		}
		if jsonPath != "" {
			f, err := os.Create(jsonPath)
			if err == nil {
				err = r.WriteJSON(f)
			}
			if err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "socsim:", err)
				return 1
			}
			fmt.Printf("wrote %s\n", jsonPath)
		}
		if vcdPath != "" && len(r.Counterexamples) > 0 {
			rec := trace.NewRecorder()
			r.Replay(rec, r.Counterexamples[0])
			f, err := os.Create(vcdPath)
			var samples, changes uint64
			if err == nil {
				samples, changes, err = rec.WriteVCD(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "socsim:", err)
				return 1
			}
			fmt.Printf("wrote %s (%d samples, %d changes)\n", vcdPath, samples, changes)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "socsim: unknown test %q\n", testName)
		return 2
	}
	if failed {
		return 1
	}
	return 0
}

// runRateck is the rate-analysis twin of runLint: build each selected
// design, solve its balance equations, and print bounds; nothing is
// simulated. The mis-rated fixtures (soc.RateFixtures) are selectable by
// exact name but excluded from "all", so "-test all -rateck" asserts
// every shipped design is rate-consistent.
func runRateck(cfg soc.Config, testName, jsonPath string) int {
	cases := append(soc.Tests(), soc.ExtraTests()...)
	if testName != "all" {
		cases = append(cases, soc.LintFixtures()...)
		cases = append(cases, soc.RateFixtures()...)
	}
	any, failed := false, false
	var all []lint.Diag
	for _, tc := range cases {
		if testName != "all" && tc.Name != testName {
			continue
		}
		any = true
		s, _ := tc.Build(cfg)
		r := ratecheck.Check(s.Sim)
		fmt.Printf("%s:\n", tc.Name)
		r.WriteTree(os.Stdout)
		if r.Errors() > 0 {
			failed = true
		}
		for _, d := range r.Diags {
			d.Path = tc.Name + "/" + d.Path
			all = append(all, d)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "socsim: unknown test %q\n", testName)
		return 2
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err == nil {
			err = lint.WriteDiagsJSON(f, all)
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "socsim:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if failed {
		return 1
	}
	return 0
}
