// Command socsim runs the prototype SoC's system-level tests under the
// selected simulation model and clocking style, reporting elapsed cycles,
// wall time, and per-node traffic statistics — the workflow behind the
// paper's Figure 6 and §4 case study.
//
//	socsim -test conv1d -mode rtl
//	socsim -test all -gals
//	socsim -test vecadd -stall 0.2 -seed 3
//	socsim -test memcpy -vcd out.vcd      # per-channel waveforms, GTKWave-ready
//	socsim -test memcpy -trace            # backpressure/deadlock report
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/connections"
	"repro/internal/soc"
	"repro/internal/trace"
)

func main() {
	testName := flag.String("test", "all", "SoC test: memcpy|vecadd|dot|conv1d|kmeans|maxpool|all")
	mode := flag.String("mode", "tlm", "channel model: tlm (sim-accurate) | signal | rtl")
	galsOn := flag.Bool("gals", false, "fine-grained GALS: one clock generator per partition")
	shadow := flag.Bool("shadow", false, "gate-level shadow cosimulation of PE datapaths (rtl mode)")
	stall := flag.Float64("stall", 0, "stall-injection probability on every channel")
	seed := flag.Int64("seed", 1, "stall-injection seed")
	statsF := flag.Bool("stats", false, "dump the full per-component metrics tree")
	statsJSON := flag.String("statsjson", "", "write the metrics snapshot as JSON to this file")
	powerF := flag.Bool("power", false, "print the architectural power breakdown")
	vcd := flag.String("vcd", "", "write a VCD waveform of every traced channel (valid/ready/occ, grouped by component scope) to this file")
	traceF := flag.Bool("trace", false, "arm channel tracing and print the per-channel backpressure/deadlock report")
	horizon := flag.Uint64("horizon", 1000, "deadlock bound for -trace, in cycles of each channel's clock")
	maxCycles := flag.Uint64("maxcycles", 10_000_000, "cycle budget")
	flag.Parse()

	cfg := soc.DefaultConfig()
	switch *mode {
	case "tlm":
		cfg.Mode = connections.ModeSimAccurate
	case "signal":
		cfg.Mode = connections.ModeSignalAccurate
	case "rtl":
		cfg.Mode = connections.ModeRTLCosim
	default:
		fmt.Fprintf(os.Stderr, "socsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	cfg.GALS = *galsOn
	cfg.ShadowNetlists = *shadow
	cfg.StallP = *stall
	cfg.StallSeed = *seed
	cfg.Trace = *vcd != "" || *traceF

	any := false
	for _, tc := range append(soc.Tests(), soc.ExtraTests()...) {
		if *testName != "all" && tc.Name != *testName {
			continue
		}
		any = true
		s, verify := tc.Build(cfg)
		start := time.Now()
		cycles, err := s.Run(*maxCycles)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "socsim: %s: %v\n", tc.Name, err)
			os.Exit(1)
		}
		status := "PASS"
		if err := verify(s); err != nil {
			status = fmt.Sprintf("FAIL (%v)", err)
		}
		fmt.Printf("%-8s %s  %8d cycles  %10s  %d instret", tc.Name, status, cycles,
			wall.Round(time.Millisecond), s.RV.CPU.Instret)
		if cfg.GALS {
			fmt.Printf("  %d clock pauses", s.Pauses())
		}
		if *vcd != "" {
			f, err := os.Create(*vcd)
			var samples, changes uint64
			if err == nil {
				samples, changes, err = s.Tracer().WriteVCD(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "socsim:", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s (%d samples, %d changes)", *vcd, samples, changes)
		}
		fmt.Println()
		var rep *trace.Report
		if cfg.Trace {
			rep = s.Tracer().Analyze(*horizon)
			// Trace-derived figures join the same registry the components
			// publish into, so -stats and -statsjson include them.
			rep.Publish(s.Sim.Metrics(), "trace")
		}
		if *traceF {
			fmt.Printf("channel trace: %d events on %d channels, %d suspects\n",
				rep.Events, len(rep.Channels), len(rep.Suspects))
			for _, line := range rep.Summary() {
				fmt.Println("  " + line)
			}
		}
		if *powerF {
			s.PowerEstimate(cycles, 1100).Print(os.Stdout)
		}
		// Every component registered itself into the simulator's metrics
		// registry during construction; the dump walks the whole tree.
		if *statsF {
			s.Sim.Metrics().Dump(os.Stdout)
		}
		if *statsJSON != "" {
			f, err := os.Create(*statsJSON)
			if err == nil {
				err = s.Sim.Metrics().WriteJSON(f)
			}
			if err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "socsim:", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n", *statsJSON)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "socsim: unknown test %q\n", *testName)
		os.Exit(2)
	}
}
