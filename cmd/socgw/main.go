// Command socgw is the fleet gateway: it fronts N socd workers with
// the same HTTP/JSON API a single daemon exposes, sharding jobs across
// the fleet by content hash (rendezvous hashing, so repeat specs hit
// the worker whose cache already holds the result) and failing jobs
// over when a worker dies mid-run.
//
//	socgw                                  # clients on :9190, workers on :9191
//	socgw -addr :0 -worker-addr :0         # ephemeral ports (printed on stdout)
//	socgw -dead-after 5s -max-retries 5
//
// Workers join with: socd -gateway <worker-addr> -name <name>.
// Clients use cmd/socctl exactly as against a lone socd.
//
// Stdout's first two lines are machine-readable for wrapper scripts:
//
//	listening on <client-addr>
//	workers on <worker-addr>
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":9190", "client HTTP listen address (use :0 for an ephemeral port)")
	workerAddr := flag.String("worker-addr", ":9191", "worker wire-protocol listen address")
	deadAfter := flag.Duration("dead-after", 5*time.Second, "silence window before a worker is declared dead")
	maxRetries := flag.Int("max-retries", 5, "dispatch attempts per job before it fails")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget for in-flight jobs")
	flag.Parse()

	logger := log.New(os.Stderr, "socgw: ", log.LstdFlags)
	gw := fleet.NewGateway(fleet.GatewayConfig{
		DeadAfter:  *deadAfter,
		MaxRetries: *maxRetries,
		Logf:       logger.Printf,
	})

	clientLn, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	workerLn, err := net.Listen("tcp", *workerAddr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *workerAddr, err)
	}
	// Both bound addresses go to stdout first so wrappers (fleet-smoke,
	// soak) can discover ephemeral ports; the order is part of the
	// contract.
	fmt.Printf("listening on %s\n", clientLn.Addr())
	fmt.Printf("workers on %s\n", workerLn.Addr())
	os.Stdout.Sync()

	httpSrv := &http.Server{Handler: gw.Handler()}
	errCh := make(chan error, 2)
	go func() { errCh <- httpSrv.Serve(clientLn) }()
	go func() { errCh <- gw.ServeWorkers(workerLn) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Printf("received %v: draining (budget %v)", sig, *drainTimeout)
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	// Drain order: stop admitting (new submissions 503), close the worker
	// listener so no new registrations race teardown, wait for in-flight
	// jobs to finish on their workers, then close the client listener.
	gw.BeginDrain()
	workerLn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		logger.Printf("drain: gave up on stragglers: %v", err)
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("drained, exiting")
}
