// Command socd is the flow's simulation-as-a-service daemon: it hosts
// the internal/serve job service — SoC simulation, stall-hunt
// campaigns, static lint, HLS flow QoR, and the Figure 6 comparison —
// behind an HTTP/JSON API with bounded queueing, a content-addressed
// result cache, streaming NDJSON progress, and graceful drain on
// SIGTERM/SIGINT.
//
//	socd                         # listen on :9090, 2 workers
//	socd -addr :0 -workers 4     # ephemeral port (printed on stdout)
//	socd -queue 64 -cache 256 -job-timeout 5m
//
// With -gateway the daemon also joins a socgw fleet: it dials the
// gateway's worker port, registers under -name, and accepts jobs over
// the binary wire protocol alongside its own HTTP surface.
//
//	socd -addr :0 -gateway 127.0.0.1:9191 -name w1
//
// Submit and watch jobs with cmd/socctl.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 2, "job worker pool width")
	queue := flag.Int("queue", 16, "bounded admission queue depth (full queue sheds with 429)")
	cacheSize := flag.Int("cache", 128, "content-addressed result cache entries (LRU)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job wall bound (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget before in-flight jobs are canceled")
	gateway := flag.String("gateway", "", "socgw worker-port address to join as a fleet worker (empty = standalone)")
	name := flag.String("name", "", "worker name for fleet registration (required with -gateway)")
	heartbeat := flag.Duration("heartbeat", time.Second, "fleet heartbeat cadence (with -gateway)")
	flag.Parse()

	logger := log.New(os.Stderr, "socd: ", log.LstdFlags)
	jt := *jobTimeout
	if jt == 0 {
		jt = -1 // Config's "no limit" spelling
	}
	srv := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheSize:  *cacheSize,
		JobTimeout: jt,
		Logf:       logger.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	// The bound address goes to stdout as the first line so wrappers
	// (serve-smoke, scripts) can discover an ephemeral port.
	fmt.Printf("listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	// Fleet mode: dial the gateway and keep the session alive until the
	// drain begins. Local HTTP clients and the gateway share one server —
	// same queue, same cache, same results.
	fleetCtx, fleetCancel := context.WithCancel(context.Background())
	defer fleetCancel()
	if *gateway != "" {
		wk, err := fleet.NewWorker(srv, fleet.WorkerConfig{
			Name:      *name,
			Gateway:   *gateway,
			Heartbeat: *heartbeat,
			Logf:      logger.Printf,
		})
		if err != nil {
			logger.Fatalf("fleet: %v", err)
		}
		go wk.Run(fleetCtx)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Printf("received %v: draining (budget %v)", sig, *drainTimeout)
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	// Drain order: stop admitting first (new submissions get 503), let
	// queued and in-flight jobs finish inside the budget — canceling the
	// stragglers through the campaign context — then close the HTTP
	// listener. Progress streams end naturally when their jobs do, so
	// the HTTP shutdown completes promptly.
	fleetCancel() // leave the fleet first so the gateway fails our queue over
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain: canceled stragglers: %v", err)
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("drained, exiting")
}
