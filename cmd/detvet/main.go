// Command detvet is the repo's determinism vet: a syntactic analyzer
// over the simulation-kernel packages whose results must be bit-identical
// across runs and machines (internal/sim, internal/connections,
// internal/gals, internal/noc, internal/psim, internal/rtl). It flags the three ways
// nondeterminism usually leaks into a Go simulator:
//
//   - importing "time" (wall-clock reads in simulated-time code),
//   - calling the global math/rand source (rand.Intn and friends share
//     process-global state; seeded rand.New(rand.NewSource(...)) streams
//     are fine),
//   - ranging over a map (iteration order is randomized per run).
//
// Packages listed in floatFreeDirs are additionally barred from
// floating point (float32/float64 names and floating literals): their
// published numbers are exact rationals, and a single float sneaking
// into a bound computation would silently trade exactness for rounding.
//
// A finding can be waived by putting a "//detvet:ok <reason>" comment on
// the offending line or the line above it.
//
// The analysis is deliberately syntactic — go/parser and go/ast only, no
// type checking — so it runs instantly with no module resolution and
// errs toward flagging; the waiver comment handles the rare false
// positive. Test files are exempt.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checkedDirs are the packages under the determinism contract: the
// kernel and everything that executes inside its event loop, plus the
// gate-level evaluator whose VCD bytes and port ordering must be
// identical run to run (its map-range port iteration once made VCD
// declaration order random per process).
var checkedDirs = []string{
	"internal/sim",
	"internal/connections",
	"internal/gals",
	"internal/noc",
	"internal/psim",
	"internal/rtl",
	// The fleet layer's result bytes must be spec-determined: the wire
	// codec admits no wall-clock or map-order at all, and the gateway's
	// unavoidable wall-clock (heartbeat liveness) and map iteration
	// (load scans resolved by rendezvous ranking) carry explicit
	// waivers so each use stays auditable.
	"internal/fleet",
	"internal/fleet/wire",
	// The static rate analysis renders byte-stable reports and is under
	// the stricter no-float contract below: every bound it publishes is
	// an exact rational.
	"internal/ratecheck",
	// The bounded model checker: a proof must mean the same thing on
	// every host, so the search order, the state hashing, and the
	// rendered counterexamples are all under the determinism contract —
	// and under no-float, since its state space is packed integers.
	"internal/mc",
}

// floatFreeDirs are checked packages additionally barred from floating
// point. ratecheck's whole contract is exact rational arithmetic — a
// float64 in a bound computation rounds, and a rounded bound is no
// longer a sound bound. mc's verdicts are reachability facts over
// packed bitvector states; floats have nothing to contribute there
// either.
var floatFreeDirs = map[string]bool{
	"internal/ratecheck": true,
	"internal/mc":        true,
}

// randAllowed are the math/rand selectors that construct or name seeded
// streams rather than touching the global source.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
}

type finding struct {
	pos token.Position
	msg string
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var all []finding
	for _, dir := range checkedDirs {
		fs, err := checkDir(filepath.Join(root, dir), floatFreeDirs[dir])
		if err != nil {
			fmt.Fprintln(os.Stderr, "detvet:", err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].pos, all[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range all {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "detvet: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}

func checkDir(dir string, noFloat bool) ([]finding, error) {
	fset := token.NewFileSet()
	notTest := func(fi os.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") }
	pkgs, err := parser.ParseDir(fset, dir, notTest, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var fs []finding
	// Deterministic file order, fittingly.
	var files []*ast.File
	var names []string
	byName := map[string]*ast.File{}
	for _, pkg := range pkgs {
		for name, f := range pkg.Files { //detvet:ok sorted into names below
			names = append(names, name)
			byName[name] = f
		}
	}
	sort.Strings(names)
	for _, n := range names {
		files = append(files, byName[n])
	}
	// Map-typed names visible package-wide: struct fields and
	// package-level vars. Locals are collected per enclosing function in
	// checkFile, so a map named "x" in one function never taints a slice
	// named "x" elsewhere. The range check matches ranged expressions
	// against these sets by name — coarse, but sound enough with the
	// waiver escape hatch.
	mapFields := map[string]bool{}
	for _, f := range files {
		collectPackageMapNames(f, mapFields)
	}
	for _, n := range names {
		fs = append(fs, checkFile(fset, byName[n], mapFields, noFloat)...)
	}
	return fs, nil
}

func isMakeMap(e ast.Expr) bool {
	c, ok := e.(*ast.CallExpr)
	if !ok || len(c.Args) == 0 {
		return false
	}
	if id, ok := c.Fun.(*ast.Ident); !ok || id.Name != "make" {
		return false
	}
	_, ok = c.Args[0].(*ast.MapType)
	return ok
}

func isMapLit(e ast.Expr) bool {
	c, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	_, ok = c.Type.(*ast.MapType)
	return ok
}

// collectPackageMapNames records map-typed struct fields and
// package-level vars.
func collectPackageMapNames(f *ast.File, out map[string]bool) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			switch spec := spec.(type) {
			case *ast.ValueSpec:
				collectSpecMapNames(spec, out)
			case *ast.TypeSpec:
				ast.Inspect(spec.Type, func(n ast.Node) bool {
					st, ok := n.(*ast.StructType)
					if !ok {
						return true
					}
					for _, fld := range st.Fields.List {
						if _, ok := fld.Type.(*ast.MapType); ok {
							for _, id := range fld.Names {
								out[id.Name] = true
							}
						}
					}
					return true
				})
			}
		}
	}
}

// collectLocalMapNames records identifiers bound to a map type inside
// one function: map-typed parameters, var specs, and assignment targets
// whose right-hand side is make(map...) or a map composite literal.
func collectLocalMapNames(fn *ast.FuncDecl, out map[string]bool) {
	if fn.Type.Params != nil {
		for _, fld := range fn.Type.Params.List {
			if _, ok := fld.Type.(*ast.MapType); ok {
				for _, id := range fld.Names {
					out[id.Name] = true
				}
			}
		}
	}
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			collectSpecMapNames(n, out)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if (isMakeMap(rhs) || isMapLit(rhs)) && i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		}
		return true
	})
}

func collectSpecMapNames(spec *ast.ValueSpec, out map[string]bool) {
	if _, ok := spec.Type.(*ast.MapType); ok {
		for _, id := range spec.Names {
			out[id.Name] = true
		}
	}
	for i, v := range spec.Values {
		if (isMakeMap(v) || isMapLit(v)) && i < len(spec.Names) {
			out[spec.Names[i].Name] = true
		}
	}
}

func checkFile(fset *token.FileSet, f *ast.File, mapFields map[string]bool, noFloat bool) []finding {
	// Lines carrying a waiver comment, plus the line each waiver covers
	// when it stands alone above the offending statement.
	waived := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "detvet:ok") {
				line := fset.Position(c.Pos()).Line
				waived[line] = true
				waived[line+1] = true
			}
		}
	}
	report := func(fs *[]finding, pos token.Pos, msg string) {
		p := fset.Position(pos)
		if waived[p.Line] {
			return
		}
		*fs = append(*fs, finding{pos: p, msg: msg})
	}

	var fs []finding
	randName := ""
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		switch path {
		case "time":
			report(&fs, imp.Pos(), `imports "time": wall-clock reads are nondeterministic in simulated-time code (use sim.Time)`)
		case "math/rand":
			randName = "rand"
			if imp.Name != nil {
				randName = imp.Name.Name
			}
		}
	}
	// Locals are scoped to their enclosing top-level function; the
	// package-wide field/var set applies everywhere.
	for _, decl := range f.Decls {
		local := map[string]bool{}
		if fn, ok := decl.(*ast.FuncDecl); ok {
			collectLocalMapNames(fn, local)
		}
		isMap := func(name string) bool { return local[name] || mapFields[name] }
		ast.Inspect(decl, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || randName == "" || id.Name != randName || randAllowed[sel.Sel.Name] {
					return true
				}
				report(&fs, n.Pos(), fmt.Sprintf("calls %s.%s: the global math/rand source is process-shared; use a seeded rand.New(rand.NewSource(...))", randName, sel.Sel.Name))
			case *ast.RangeStmt:
				switch x := n.X.(type) {
				case *ast.Ident:
					if isMap(x.Name) {
						report(&fs, n.Pos(), fmt.Sprintf("ranges over map %q: iteration order is randomized per run", x.Name))
					}
				case *ast.SelectorExpr:
					if isMap(x.Sel.Name) {
						report(&fs, n.Pos(), fmt.Sprintf("ranges over map field %q: iteration order is randomized per run", x.Sel.Name))
					}
				}
			case *ast.Ident:
				// Syntactic, so a selector like math.Float64bits passes (its
				// Sel is "Float64bits", not the type name); only the bare
				// type names in declarations, conversions, and type switches
				// are caught — which is where floats enter a computation.
				if noFloat && (n.Name == "float64" || n.Name == "float32") {
					report(&fs, n.Pos(), fmt.Sprintf("uses %s: this package publishes exact rationals; floating point rounds and a rounded bound is unsound", n.Name))
				}
			case *ast.BasicLit:
				if noFloat && n.Kind == token.FLOAT {
					report(&fs, n.Pos(), fmt.Sprintf("floating literal %s: this package publishes exact rationals; use integer or sim.Rat arithmetic", n.Value))
				}
			}
			return true
		})
	}
	return fs
}
