package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOn(t *testing.T, src string) []finding { return runOnOpts(t, src, false) }

func runOnOpts(t *testing.T, src string, noFloat bool) []finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := checkDir(dir, noFloat)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFlagsTimeImport(t *testing.T) {
	fs := runOn(t, `package x
import "time"
var T = time.Now
`)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, `imports "time"`) {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestFlagsGlobalRand(t *testing.T) {
	fs := runOn(t, `package x
import "math/rand"
func f() int { return rand.Intn(4) }
func g() *rand.Rand { return rand.New(rand.NewSource(1)) }
`)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, "rand.Intn") {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestFlagsMapRange(t *testing.T) {
	fs := runOn(t, `package x
type s struct{ m map[int]int }
func f(v *s) {
	for k := range v.m {
		_ = k
	}
	local := make(map[string]bool)
	for k := range local {
		_ = k
	}
}
func g(slice []int) {
	for i := range slice {
		_ = i
	}
}
`)
	if len(fs) != 2 {
		t.Fatalf("findings = %+v, want the two map ranges only", fs)
	}
}

func TestLocalMapsDoNotLeakAcrossFunctions(t *testing.T) {
	// A map named "out" in one function must not taint a slice named
	// "out" in another.
	fs := runOn(t, `package x
func a() {
	out := make(map[int]int)
	_ = out
}
func b(out []int) {
	for i := range out {
		_ = i
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none", fs)
	}
}

func TestRTLUnderDeterminismContract(t *testing.T) {
	// The gate-level evaluator's VCD byte stream must be identical run
	// to run; keep it inside the no-map-range contract.
	for _, d := range checkedDirs {
		if d == "internal/rtl" {
			return
		}
	}
	t.Fatal("internal/rtl missing from checkedDirs")
}

func TestFlagsFloats(t *testing.T) {
	src := `package x
type r struct{ v float64 }
func f(x float32) float64 { return float64(x) * 0.5 }
func g(n int) int { return n * 2 }
`
	if fs := runOnOpts(t, src, false); len(fs) != 0 {
		t.Fatalf("float rule fired outside a float-free dir: %+v", fs)
	}
	fs := runOnOpts(t, src, true)
	// One per float mention: the field type, the param type, the result
	// type, the conversion, and the 0.5 literal.
	if len(fs) != 5 {
		t.Fatalf("findings = %+v, want 5", fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.msg, "exact rational") {
			t.Fatalf("unexpected finding: %+v", f)
		}
	}
}

func TestFloatWaiver(t *testing.T) {
	fs := runOnOpts(t, `package x
//detvet:ok display-only percentage, never fed back into a bound
func pct(n, d int) float64 {
	return float64(n) //detvet:ok same
}
`, true)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want waived", fs)
	}
}

func TestRatecheckUnderFloatFreeContract(t *testing.T) {
	if !floatFreeDirs["internal/ratecheck"] {
		t.Fatal("internal/ratecheck missing from floatFreeDirs")
	}
	found := false
	for _, d := range checkedDirs {
		if d == "internal/ratecheck" {
			found = true
		}
	}
	if !found {
		t.Fatal("internal/ratecheck missing from checkedDirs")
	}
}

func TestWaiverComment(t *testing.T) {
	fs := runOn(t, `package x
func f() {
	m := make(map[int]int)
	for k := range m { //detvet:ok keys are summed, order-free
		_ = k
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want waived", fs)
	}
}
