package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOn(t *testing.T, src string) []finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFlagsTimeImport(t *testing.T) {
	fs := runOn(t, `package x
import "time"
var T = time.Now
`)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, `imports "time"`) {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestFlagsGlobalRand(t *testing.T) {
	fs := runOn(t, `package x
import "math/rand"
func f() int { return rand.Intn(4) }
func g() *rand.Rand { return rand.New(rand.NewSource(1)) }
`)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, "rand.Intn") {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestFlagsMapRange(t *testing.T) {
	fs := runOn(t, `package x
type s struct{ m map[int]int }
func f(v *s) {
	for k := range v.m {
		_ = k
	}
	local := make(map[string]bool)
	for k := range local {
		_ = k
	}
}
func g(slice []int) {
	for i := range slice {
		_ = i
	}
}
`)
	if len(fs) != 2 {
		t.Fatalf("findings = %+v, want the two map ranges only", fs)
	}
}

func TestLocalMapsDoNotLeakAcrossFunctions(t *testing.T) {
	// A map named "out" in one function must not taint a slice named
	// "out" in another.
	fs := runOn(t, `package x
func a() {
	out := make(map[int]int)
	_ = out
}
func b(out []int) {
	for i := range out {
		_ = i
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want none", fs)
	}
}

func TestRTLUnderDeterminismContract(t *testing.T) {
	// The gate-level evaluator's VCD byte stream must be identical run
	// to run; keep it inside the no-map-range contract.
	for _, d := range checkedDirs {
		if d == "internal/rtl" {
			return
		}
	}
	t.Fatal("internal/rtl missing from checkedDirs")
}

func TestWaiverComment(t *testing.T) {
	fs := runOn(t, `package x
func f() {
	m := make(map[int]int)
	for k := range m { //detvet:ok keys are summed, order-free
		_ = k
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %+v, want waived", fs)
	}
}
