// Command socsoak is the fleet soak driver: it hammers a socgw gateway
// (or a lone socd — the API is identical) with rounds of concurrent
// job submissions and verifies the two fleet invariants the design
// promises:
//
//   - zero loss: every submitted job reaches a terminal "done" state,
//     even when workers are killed and restarted mid-round (the wrapper
//     script does the killing);
//   - byte identity: every repeat of a spec returns a result body
//     byte-identical to its first answer, whichever worker computed it
//     and however many failovers happened in between.
//
// Exit status is nonzero on any lost job or body mismatch, so wrapper
// scripts can assert soak health directly.
//
// With -bench-json the soak doubles as a throughput benchmark: the
// completed-job rate is written as a small JSON record, giving the
// fleet a tracked figure of merit alongside its correctness invariants.
//
//	socsoak -addr localhost:9190 -rounds 5 -concurrency 8
//	socsoak -addr localhost:9190 -bench-json BENCH_fleet.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// specs is the soak workload: cheap real kinds with enough seed
// variety to spread across a 3-worker fleet, repeated every round so
// later rounds revisit earlier content hashes (exercising worker-cache
// affinity and failover byte identity at once).
func specs(round int) []string {
	out := []string{
		`{"kind":"sim","test":"memcpy"}`,
		`{"kind":"sim","test":"vecadd"}`,
		`{"kind":"lint","test":"memcpy"}`,
		`{"kind":"qor"}`,
	}
	for s := 0; s < 4; s++ {
		out = append(out, fmt.Sprintf(
			`{"kind":"stallhunt","stall":0.3,"messages":40,"seeds":2,"seed":%d}`, 1000+s))
	}
	// One per-round unique spec keeps every round from being a pure
	// cache replay.
	out = append(out, fmt.Sprintf(
		`{"kind":"stallhunt","stall":0.25,"messages":40,"seeds":2,"seed":%d}`, 2000+round))
	return out
}

func main() {
	addr := flag.String("addr", "localhost:9190", "gateway (or daemon) address")
	rounds := flag.Int("rounds", 5, "submission rounds")
	concurrency := flag.Int("concurrency", 8, "concurrent submissions per round")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request timeout")
	benchJSON := flag.String("bench-json", "", "write a throughput summary (rounds, jobs, seconds, jobs_per_sec) as JSON to this file")
	flag.Parse()

	base := "http://" + strings.TrimPrefix(*addr, "http://")
	client := &http.Client{Timeout: *timeout}

	var mu sync.Mutex
	golden := map[string][]byte{} // spec -> first body seen
	lost, mismatched, completed := 0, 0, 0

	start := time.Now()
	for round := 1; round <= *rounds; round++ {
		work := specs(round)
		sem := make(chan struct{}, *concurrency)
		var wg sync.WaitGroup
		for _, spec := range work {
			wg.Add(1)
			sem <- struct{}{}
			go func(spec string) {
				defer wg.Done()
				defer func() { <-sem }()
				body, err := submitWait(client, base, spec)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					lost++
					fmt.Fprintf(os.Stderr, "socsoak: round %d: LOST %s: %v\n", round, spec, err)
					return
				}
				completed++
				if prev, ok := golden[spec]; ok {
					if !bytes.Equal(prev, body) {
						mismatched++
						fmt.Fprintf(os.Stderr, "socsoak: round %d: MISMATCH %s\n", round, spec)
					}
				} else {
					golden[spec] = body
				}
			}(spec)
		}
		wg.Wait()
		fmt.Printf("socsoak: round %d/%d done (%d completed, %d lost, %d mismatched)\n",
			round, *rounds, completed, lost, mismatched)
	}

	elapsed := time.Since(start).Seconds()
	fmt.Printf("socsoak: %d jobs completed, %d lost, %d mismatched in %.1fs (%.1f jobs/s)\n",
		completed, lost, mismatched, elapsed, float64(completed)/elapsed)
	if *benchJSON != "" {
		if err := writeBench(*benchJSON, *rounds, *concurrency, completed, lost, mismatched, elapsed); err != nil {
			fmt.Fprintln(os.Stderr, "socsoak:", err)
			os.Exit(1)
		}
		fmt.Printf("socsoak: wrote %s\n", *benchJSON)
	}
	if lost > 0 || mismatched > 0 {
		os.Exit(1)
	}
}

// benchRecord is the -bench-json payload: one flat record per soak so
// successive runs diff and trend cleanly.
type benchRecord struct {
	Rounds      int     `json:"rounds"`
	Concurrency int     `json:"concurrency"`
	Jobs        int     `json:"jobs"`
	Lost        int     `json:"lost"`
	Mismatched  int     `json:"mismatched"`
	Seconds     float64 `json:"seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
}

func writeBench(path string, rounds, concurrency, jobs, lost, mismatched int, seconds float64) error {
	rec := benchRecord{
		Rounds: rounds, Concurrency: concurrency,
		Jobs: jobs, Lost: lost, Mismatched: mismatched,
		Seconds: seconds,
	}
	if seconds > 0 {
		rec.JobsPerSec = float64(jobs) / seconds
	}
	data, err := json.MarshalIndent(rec, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// submitWait submits one spec with wait=1 and returns the result body.
// Backpressure (429/503 with Retry-After) is retried — shed is flow
// control, not loss; only a genuine failure or retry exhaustion counts
// as a lost job.
func submitWait(client *http.Client, base, spec string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 30; attempt++ {
		resp, err := client.Post(base+"/jobs?wait=1", "application/json",
			strings.NewReader(spec))
		if err != nil {
			// Gateway restart window or connection blip: retry.
			lastErr = err
			time.Sleep(500 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			time.Sleep(500 * time.Millisecond)
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return body, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("shed (%d): %s", resp.StatusCode, bytes.TrimSpace(body))
			time.Sleep(time.Second)
		default:
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
	}
	return nil, fmt.Errorf("retries exhausted: %w", lastErr)
}
