// Command flowrun pushes one bundled design through the complete
// C++-to-layout flow (Figure 1 of the paper): HLS optimization,
// scheduling/pipelining, logic synthesis to gates, RTL-cosimulation
// equivalence checking, static timing, and power analysis. Optionally it
// writes the mapped netlist as structural Verilog.
//
//	flowrun -design mac32 -clock 909 -vectors 100 -verilog mac32.v
//	flowrun -list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/ratecheck"
	"repro/internal/rtl"
	"repro/internal/synth"
	"repro/internal/trace"
)

var designs = map[string]func() *hls.Design{
	"mac16":      func() *hls.Design { return hls.MACDesign(16) },
	"mac32":      func() *hls.Design { return hls.MACDesign(32) },
	"fir8x16":    func() *hls.Design { return hls.FIRDesign(8, 16) },
	"fir16x32":   func() *hls.Design { return hls.FIRDesign(16, 32) },
	"addtree16":  func() *hls.Design { return hls.AdderTreeDesign(16, 32) },
	"alu32":      func() *hls.Design { return hls.ALUDesign(32) },
	"encoder32":  func() *hls.Design { return hls.EncoderDesign(32) },
	"decoder32":  func() *hls.Design { return hls.DecoderDesign(32) },
	"priarb32":   func() *hls.Design { return hls.PriorityArbiterDesign(32) },
	"maxtree8":   func() *hls.Design { return hls.MaxTreeDesign(8, 32) },
	"popcount32": func() *hls.Design { return hls.PopcountDesign(32) },
	"xbar_dst16": func() *hls.Design { return hls.CrossbarDstLoopDesign(16, 32) },
	"xbar_src16": func() *hls.Design { return hls.CrossbarSrcLoopDesign(16, 32) },
	"xbar_dst32": func() *hls.Design { return hls.CrossbarDstLoopDesign(32, 32) },
	"xbar_src32": func() *hls.Design { return hls.CrossbarSrcLoopDesign(32, 32) },
}

func main() {
	name := flag.String("design", "mac32", "bundled design name (see -list)")
	clock := flag.Int("clock", 909, "target clock period, ps")
	vectors := flag.Int("vectors", 50, "equivalence/power vectors")
	verilog := flag.String("verilog", "", "write structural Verilog to this file")
	vcd := flag.String("vcd", "", "write a VCD waveform of the port activity to this file")
	tb := flag.String("tb", "", "write a self-checking Verilog testbench to this file")
	list := flag.Bool("list", false, "list bundled designs")
	maxMuls := flag.Int("maxmuls", 0, "multiplier resource limit per stage (0 = unlimited)")
	iiSweep := flag.Bool("ii", false, "print the initiation-interval resource-sharing ablation")
	prove := flag.Bool("prove", false, "exhaustively prove netlist/golden equivalence (designs with <= 16 input bits)")
	flag.Parse()

	if *list {
		var names []string
		for n := range designs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	build, ok := designs[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "flowrun: unknown design %q (try -list)\n", *name)
		os.Exit(2)
	}
	flow := core.DefaultFlow()
	flow.Cons.ClockPS = *clock
	flow.Cons.MaxMuls = *maxMuls

	// Lint the captured IR before spending flow time on it; error-severity
	// findings (invalid SSA, duplicate ports) fail fast.
	if lr := lint.CheckHLS(build()); len(lr.Diags) > 0 {
		lr.WriteTree(os.Stderr)
		if lr.Errors() > 0 {
			os.Exit(1)
		}
	}
	// Same gate for rate annotations: a bogus annotation (unknown port,
	// non-positive rate, duplicate) fails before the flow runs, so the
	// bounds the schedule report quotes are never built on bad input.
	if rr := ratecheck.CheckHLS(build()); len(rr.Diags) > 0 {
		rr.WriteTree(os.Stderr)
		if rr.Errors() > 0 {
			os.Exit(1)
		}
	}

	rep, err := flow.Run(build(), *vectors, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowrun:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Printf("  timing: critical path %d ps (%.0f MHz), %d logic levels\n",
		rep.Timing.CriticalPS, rep.Timing.FmaxMHz, rep.Timing.Levels)
	fmt.Printf("  area:   %.0f comb + %.0f seq = %d NAND2-equivalent gates\n",
		rep.Area.Comb, rep.Area.Sequential, rep.Area.GateCount)
	fmt.Printf("  power:  %v\n", rep.Power)
	fmt.Printf("  hls:    %d scheduler steps, %d pipeline stages\n", rep.Steps, rep.Stages)

	if *iiSweep {
		d := hls.Optimize(build())
		sched := hls.Pipeline(d, flow.Cons)
		hls.PrintIISweep(os.Stdout, d.Name, hls.IISweep(sched, []int{1, 2, 4, 8}))
	}
	if *prove {
		d := build()
		sched := hls.Pipeline(hls.Optimize(build()), flow.Cons)
		n, err := synth.ProveEquivalence(d, sched.Latency, rep.Netlist, 16)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowrun:", err)
			os.Exit(1)
		}
		fmt.Printf("  proved:  netlist ≡ golden model on all %d input combinations\n", n)
	}

	if *verilog != "" {
		if err := os.WriteFile(*verilog, []byte(rep.Netlist.Verilog()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "flowrun:", err)
			os.Exit(1)
		}
		comb, flops := rep.Netlist.CellCount()
		fmt.Printf("  wrote %s (%d cells, %d flops)\n", *verilog, comb, flops)
	}
	if *tb != "" {
		d := hls.Optimize(build())
		sched := hls.Pipeline(d, flow.Cons)
		r := rand.New(rand.NewSource(3))
		var vecs, exps []map[string]uint64
		for k := 0; k < *vectors; k++ {
			in := map[string]uint64{}
			for _, p := range d.Inputs {
				w := uint(p.Width)
				x := r.Uint64()
				if w < 64 {
					x &= 1<<w - 1
				}
				in[p.Name] = x
			}
			vecs = append(vecs, in)
			exps = append(exps, d.Interpret(in))
		}
		text := rtl.VerilogTestbench(rep.Netlist, vecs, exps, sched.Latency)
		if err := os.WriteFile(*tb, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "flowrun:", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s (%d self-checking vectors, latency %d)\n", *tb, *vectors, sched.Latency)
	}
	if *vcd != "" {
		f, err := os.Create(*vcd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowrun:", err)
			os.Exit(1)
		}
		v := trace.NewVCD(f)
		sim, err := rtl.NewSimulator(rep.Netlist)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowrun:", err)
			os.Exit(1)
		}
		sim.AttachVCD(v)
		r := rand.New(rand.NewSource(2))
		d := build()
		for k := 0; k < *vectors; k++ {
			in := map[string]uint64{}
			for _, p := range d.Inputs {
				w := uint(p.Width)
				x := r.Uint64()
				if w < 64 {
					x &= 1<<w - 1
				}
				in[p.Name] = x
			}
			sim.Step(in)
		}
		if err := v.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "flowrun:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "flowrun:", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s (%d cycles of port activity)\n", *vcd, *vectors)
	}
}
