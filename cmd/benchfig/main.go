// Command benchfig regenerates every table and figure of the paper's
// evaluation from the simulation substrate:
//
//	benchfig -fig3       cycles/transaction, arbitrated crossbar (Figure 3)
//	benchfig -fig6       SoC tests, TLM vs RTL cosim (Figure 6)
//	benchfig -qor        HLS vs hand RTL ±10% table (§2.2)
//	benchfig -xbar       src-loop vs dst-loop crossbar sweep (§2.4)
//	benchfig -gals       pausible clocking latency + area overhead (§3.1)
//	benchfig -backend    floorplan, clocking, 12-hour turnaround (§3, §4)
//	benchfig -prod       gates/engineer-day estimate (§4)
//	benchfig -noc        NoC load-latency characterization
//	benchfig -stallhunt  §2.3 multi-seed stall-injection bug hunt
//	benchfig -all        everything
//
// Experiment sections run on the internal/exp campaign runner:
// -parallel N shards each campaign's jobs over N workers, -seed picks
// the campaign seed every per-job stream is derived from, and
// -json FILE writes the merged campaign metrics (including per-job
// stats snapshots) as a stats JSON dump. Output is byte-identical for
// any -parallel value at the same -seed, wall-time columns aside.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gals"
	"repro/internal/matchlib"
	"repro/internal/noc"
	"repro/internal/soc"
	"repro/internal/stats"
	"repro/internal/verif"
)

func main() {
	fig3 := flag.Bool("fig3", false, "Figure 3: crossbar cycles/transaction")
	fig6 := flag.Bool("fig6", false, "Figure 6: SoC TLM vs RTL cosim")
	qor := flag.Bool("qor", false, "§2.2 HLS vs hand-RTL QoR table")
	xbar := flag.Bool("xbar", false, "§2.4 crossbar coding sweep")
	galsF := flag.Bool("gals", false, "§3.1 GALS clocking results")
	backend := flag.Bool("backend", false, "§3/§4 back-end reports")
	prod := flag.Bool("prod", false, "§4 productivity estimate")
	nocF := flag.Bool("noc", false, "NoC load-latency characterization")
	stallhunt := flag.Bool("stallhunt", false, "§2.3 multi-seed stall-injection hunt")
	all := flag.Bool("all", false, "run everything")
	parallel := flag.Int("parallel", 1, "campaign worker-pool size")
	seed := flag.Int64("seed", 7, "campaign seed (per-job seeds derive from it)")
	jsonOut := flag.String("json", "", "write merged campaign metrics JSON to `file`")
	vcdOnFail := flag.String("vcd-on-fail", "", "on a stall-hunt failure, re-run the first failing seed traced and write its channel waveforms to `file`")
	flag.Parse()

	if !(*fig3 || *fig6 || *qor || *xbar || *galsF || *backend || *prod || *nocF || *stallhunt || *all) {
		flag.Usage()
		os.Exit(2)
	}
	flow := core.DefaultFlow()

	var merged []stats.Metric
	collect := func(s *exp.Summary) {
		merged = append(merged, s.Metrics()...)
		for _, f := range s.Failures() {
			fmt.Fprintf(os.Stderr, "benchfig: %s/%s failed: %v\n", s.Name, f.Name, f.Err)
		}
	}

	if *all || *fig3 {
		rows, sum := matchlib.RunFig3Campaign([]int{2, 4, 8, 16}, 300, *seed, *parallel)
		collect(sum)
		matchlib.PrintFig3(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *qor {
		rows, err := core.QoRTable(flow)
		check(err)
		core.PrintQoRTable(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *xbar {
		rows, err := core.XbarSweep(flow, []int{4, 8, 16, 32}, 32)
		check(err)
		core.PrintXbarSweep(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *galsF {
		fmt.Println("Fine-grained GALS (§3.1)")
		pts, sum := gals.MarginSweep(900, []float64{0.05, 0.10, 0.15}, 5_000_000, *seed, *parallel)
		collect(sum)
		for _, p := range pts {
			fmt.Printf("  adaptive clock generator at %2.0f%% droop: fixed %.1f MHz vs adaptive %.1f MHz (+%.1f%% margin recovered)\n",
				100*p.Droop, p.FixedMHz, p.AdaptiveMHz, p.GainPct)
		}
		for _, g := range []int{100_000, 300_000, 500_000, 1_000_000, 2_000_000} {
			o := gals.GALSOverhead(g, 2)
			fmt.Printf("  %v\n", o)
		}
		const year = 365.25 * 24 * 3600
		fmt.Printf("  brute-force 2-flop synchronizer MTBF at 1.1 GHz: %.3g years (pausible: error-free by construction)\n",
			gals.SyncMTBF(2, 909, 3636)/year)
		fmt.Println()
	}
	if *all || *backend {
		core.PrintBackendReport(os.Stdout, flow)
		fmt.Println()
	}
	if *all || *prod {
		rows, err := core.ProductivityTable(flow)
		check(err)
		core.PrintProductivity(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *nocF {
		pts, sum := noc.LoadLatencyCampaign(4, 4, []float64{0.02, 0.05, 0.10, 0.20, 0.40, 0.60}, 4000, 2, *seed, *parallel)
		collect(sum)
		noc.PrintLoadLatency(os.Stdout, 4, 4, pts)
		fmt.Println()
	}
	if *all || *stallhunt {
		agg, sum := verif.RunStallHuntCampaign(0.30, 200, 8, *seed, *parallel)
		collect(sum)
		fmt.Println("Stall-injection bug hunt (§2.3), 8 stall seeds at p=0.30")
		fmt.Printf("  bug exposed by %d/%d seeds (buggy corner reached by %d)\n",
			agg.BugSeeds, len(agg.Results), agg.CornerSeeds)
		fmt.Printf("  best timing-state coverage %d states; %d messages delivered in total\n",
			agg.MaxTimingStates, agg.TotalDelivered)
		nominal := verif.RunStallHunt(0, *seed, 200)
		fmt.Printf("  nominal timing control: %d errors, corner covered: %v\n",
			len(nominal.Errors), nominal.CornerCovered)
		if len(agg.Diagnosis) > 0 {
			fmt.Printf("  channel diagnosis of first failing seed (index %d):\n", agg.FirstBugIndex)
			for _, line := range agg.Diagnosis {
				fmt.Println("    " + line)
			}
		}
		if *vcdOnFail != "" && agg.FirstBugIndex >= 0 {
			// Re-run the failure with tracing armed and dump the handshake
			// waveforms — the "open the wave of the failing seed" workflow.
			_, rec := verif.RunStallHuntTraced(0.30, agg.FirstBugSeed, 200)
			f, err := os.Create(*vcdOnFail)
			check(err)
			samples, changes, err := rec.WriteVCD(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			check(err)
			fmt.Printf("  wrote %s (%d samples, %d changes)\n", *vcdOnFail, samples, changes)
		}
		fmt.Println()
	}
	if *all || *fig6 {
		fmt.Println("(Figure 6 runs full gate-level shadow cosimulation; this takes a minute)")
		rows, sum := soc.RunFig6Campaign(5_000_000, *parallel)
		check(sum.Err())
		collect(sum)
		soc.PrintFig6(os.Stdout, rows)
		printFig6Activity(rows)
		fmt.Println()
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		check(err)
		stats.SortMetrics(merged)
		err = stats.WriteMetricsJSON(f, merged)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		check(err)
		fmt.Printf("wrote %d campaign metrics to %s\n", len(merged), *jsonOut)
	}
}

// printFig6Activity aggregates each run's machine-readable metrics dump:
// the stats JSON that RunFig6 snapshots per test is parsed back and
// rolled up by path prefix, giving the activity columns behind the power
// model (NoC flit-hops, channel transfers, scratchpad accesses).
func printFig6Activity(rows []soc.Fig6Row) {
	fmt.Printf("%-10s %12s %14s %12s %12s\n",
		"test", "noc flits", "ch transfers", "mem reads", "mem writes")
	for _, r := range rows {
		ms, err := stats.ParseJSON(r.TLMStats)
		check(err)
		fmt.Printf("%-10s %12.0f %14.0f %12.0f %12.0f\n", r.Test,
			stats.Total(ms, "soc/noc", "flits_out"),
			stats.Total(ms, "soc", "transfers"),
			stats.Total(ms, "soc", "mem_reads"),
			stats.Total(ms, "soc", "mem_writes"))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}
