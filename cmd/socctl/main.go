// Command socctl is the client for the socd job daemon — and,
// unchanged, for the socgw fleet gateway, which speaks the same HTTP
// API: submit jobs, watch their streamed progress, and fetch results
// over plain HTTP.
//
//	socctl -addr localhost:9090 submit -kind sim -test memcpy -wait
//	socctl submit -kind stallhunt -stall 0.3 -messages 200 -seeds 8 -watch
//	socctl submit -spec '{"kind":"lint","test":"badcdc"}'
//	socctl rateck conv1d
//	socctl verify mcserdes
//	socctl watch job-3
//	socctl result job-3
//	socctl jobs
//	socctl metrics
//	socctl health
//
// A submission is content-addressed: resubmitting an identical spec is
// served byte-identically from the daemon's result cache (the response
// carries "cached": true / an X-Cache: hit header).
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: socctl [-addr host:port] <command> [args]

commands:
  submit   submit a job spec (flags or -spec JSON); -wait blocks for the
           result, -watch streams NDJSON progress then prints the result
  rateck   run the static communication-rate check on one design:
           submit {"kind":"rateck"}, stream progress, print the report
  verify   bounded-model-check one design's channel graph: submit
           {"kind":"verify"}, stream per-depth progress, print the report
  watch    stream a job's NDJSON progress events
  result   fetch a finished job's result body
  jobs     list jobs in submission order
  metrics  dump the daemon's stats snapshot (serve/* namespace; against
           a socgw gateway this is the fleet/* namespace)
  workers  list a socgw gateway's registered workers and their load
  health   query /healthz
`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "localhost:9090", "socd address")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	base := "http://" + strings.TrimPrefix(*addr, "http://")
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(base, args)
	case "rateck":
		err = cmdRateck(base, args)
	case "verify":
		err = cmdVerify(base, args)
	case "watch":
		err = cmdWatch(base, args)
	case "result":
		err = cmdGet(base, args, "/jobs/%s/result")
	case "jobs":
		err = cmdPlain(base + "/jobs")
	case "metrics":
		err = cmdPlain(base + "/metrics")
	case "workers":
		err = cmdPlain(base + "/workers")
	case "health":
		err = cmdPlain(base + "/healthz")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "socctl:", err)
		os.Exit(1)
	}
}

func cmdSubmit(base string, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	specJSON := fs.String("spec", "", "raw spec JSON (overrides the field flags)")
	kind := fs.String("kind", "sim", "job kind: sim|lint|rateck|verify|stallhunt|qor|fig6")
	test := fs.String("test", "", "SoC test / lint design name")
	mode := fs.String("mode", "", "channel model: tlm|signal|rtl")
	gals := fs.Bool("gals", false, "per-partition clock generators")
	maxCycles := fs.Uint64("maxcycles", 0, "cycle budget (0 = kind default)")
	stall := fs.Float64("stall", 0, "stall-injection probability")
	seed := fs.Int64("seed", 0, "stall / campaign seed")
	messages := fs.Int("messages", 0, "stallhunt messages per producer")
	seeds := fs.Int("seeds", 0, "stallhunt campaign width")
	parallel := fs.Int("parallel", 0, "campaign shard width (not part of the content hash)")
	depth := fs.Int("depth", 0, "verify unrolling bound (0 = kind default)")
	wait := fs.Bool("wait", false, "block until the job finishes and print its result")
	watch := fs.Bool("watch", false, "stream progress events, then print the result")
	fs.Parse(args)

	var spec []byte
	if *specJSON != "" {
		spec = []byte(*specJSON)
	} else {
		s := serve.Spec{
			Kind: *kind, Test: *test, Mode: *mode, GALS: *gals,
			MaxCycles: *maxCycles, Stall: *stall, Seed: *seed,
			Messages: *messages, Seeds: *seeds, Parallel: *parallel,
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, `{"kind":%q`, s.Kind)
		if s.Test != "" {
			fmt.Fprintf(&buf, `,"test":%q`, s.Test)
		}
		if s.Mode != "" {
			fmt.Fprintf(&buf, `,"mode":%q`, s.Mode)
		}
		if s.GALS {
			buf.WriteString(`,"gals":true`)
		}
		if s.MaxCycles != 0 {
			fmt.Fprintf(&buf, `,"max_cycles":%d`, s.MaxCycles)
		}
		if s.Stall != 0 {
			fmt.Fprintf(&buf, `,"stall":%g`, s.Stall)
		}
		if s.Seed != 0 {
			fmt.Fprintf(&buf, `,"seed":%d`, s.Seed)
		}
		if s.Messages != 0 {
			fmt.Fprintf(&buf, `,"messages":%d`, s.Messages)
		}
		if s.Seeds != 0 {
			fmt.Fprintf(&buf, `,"seeds":%d`, s.Seeds)
		}
		if s.Parallel != 0 {
			fmt.Fprintf(&buf, `,"parallel":%d`, s.Parallel)
		}
		if *depth != 0 {
			fmt.Fprintf(&buf, `,"depth":%d`, *depth)
		}
		buf.WriteString("}")
		spec = buf.Bytes()
	}

	url := base + "/jobs"
	if *wait && !*watch {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(spec))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return fmt.Errorf("%s (Retry-After: %ss): %s", resp.Status, ra, strings.TrimSpace(string(body)))
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	os.Stdout.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		fmt.Println()
	}
	if !*watch {
		return nil
	}
	id, err := fieldFromJSON(body, "id")
	if err != nil {
		return err
	}
	if err := streamEvents(base, id); err != nil {
		return err
	}
	return fetch(base+"/jobs/"+id+"/result", os.Stdout)
}

// cmdRateck is the one-shot front door for the static rate analysis:
// it submits a rateck job for the named design, streams the daemon's
// NDJSON progress, and prints the report. Resubmitting hits the
// content-addressed cache byte-identically, so it is cheap to rerun
// after every edit.
func cmdRateck(base string, args []string) error {
	fs := flag.NewFlagSet("rateck", flag.ExitOnError)
	mode := fs.String("mode", "", "channel model: tlm|signal|rtl")
	galsCk := fs.Bool("gals", false, "per-partition clock generators")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: socctl rateck [-mode m] [-gals] <design>")
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"kind":"rateck","test":%q`, fs.Arg(0))
	if *mode != "" {
		fmt.Fprintf(&buf, `,"mode":%q`, *mode)
	}
	if *galsCk {
		buf.WriteString(`,"gals":true`)
	}
	buf.WriteString("}")

	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	id, err := fieldFromJSON(body, "id")
	if err != nil {
		return err
	}
	// A cached repeat is already done — skip the stream, which would
	// otherwise just replay the recorded events, and print the result.
	if bytes.Contains(body, []byte(`"cached": true`)) || bytes.Contains(body, []byte(`"cached":true`)) {
		fmt.Printf("cached result (job %s):\n", id)
		return fetch(base+"/jobs/"+id+"/result", os.Stdout)
	}
	fmt.Printf("submitted job %s\n", id)
	if err := streamEvents(base, id); err != nil {
		return err
	}
	return fetch(base+"/jobs/"+id+"/result", os.Stdout)
}

// cmdVerify is the one-shot front door for the bounded model checker:
// it submits a verify job for the named design, streams the daemon's
// per-depth NDJSON progress, and prints the verdict report. Like
// rateck, a resubmission hits the content-addressed cache
// byte-identically — a proof is a perfectly cacheable artifact.
func cmdVerify(base string, args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	mode := fs.String("mode", "", "channel model: tlm|signal|rtl")
	galsCk := fs.Bool("gals", false, "per-partition clock generators")
	depth := fs.Int("depth", 0, "unrolling bound (0 = server default 64)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: socctl verify [-mode m] [-gals] [-depth k] <design>")
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"kind":"verify","test":%q`, fs.Arg(0))
	if *mode != "" {
		fmt.Fprintf(&buf, `,"mode":%q`, *mode)
	}
	if *galsCk {
		buf.WriteString(`,"gals":true`)
	}
	if *depth > 0 {
		fmt.Fprintf(&buf, `,"depth":%d`, *depth)
	}
	buf.WriteString("}")

	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	id, err := fieldFromJSON(body, "id")
	if err != nil {
		return err
	}
	if bytes.Contains(body, []byte(`"cached": true`)) || bytes.Contains(body, []byte(`"cached":true`)) {
		fmt.Printf("cached result (job %s):\n", id)
		return fetch(base+"/jobs/"+id+"/result", os.Stdout)
	}
	fmt.Printf("submitted job %s\n", id)
	if err := streamEvents(base, id); err != nil {
		return err
	}
	return fetch(base+"/jobs/"+id+"/result", os.Stdout)
}

// fieldFromJSON pulls one top-level string field out of a small JSON
// object without reflecting the whole response shape into the client.
func fieldFromJSON(data []byte, field string) (string, error) {
	needle := []byte(`"` + field + `": "`)
	i := bytes.Index(data, needle)
	if i < 0 {
		needle = []byte(`"` + field + `":"`)
		i = bytes.Index(data, needle)
	}
	if i < 0 {
		return "", fmt.Errorf("no %q in response %s", field, data)
	}
	rest := data[i+len(needle):]
	j := bytes.IndexByte(rest, '"')
	if j < 0 {
		return "", fmt.Errorf("unterminated %q in response", field)
	}
	return string(rest[:j]), nil
}

func cmdWatch(base string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: socctl watch <job-id>")
	}
	return streamEvents(base, args[0])
}

func streamEvents(base, id string) error {
	resp, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	start := time.Now()
	for sc.Scan() {
		fmt.Printf("[%7.3fs] %s\n", time.Since(start).Seconds(), sc.Text())
	}
	return sc.Err()
}

func cmdGet(base string, args []string, pattern string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: socctl result <job-id>")
	}
	return fetch(base+fmt.Sprintf(pattern, args[0]), os.Stdout)
}

func cmdPlain(url string) error { return fetch(url, os.Stdout) }

func fetch(url string, w io.Writer) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	w.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		fmt.Fprintln(w)
	}
	return nil
}
