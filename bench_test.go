// Benchmarks regenerating the paper's evaluation artifacts, one per
// table/figure (see EXPERIMENTS.md for the mapping and the recorded
// numbers). `go test -bench=. -benchmem` runs them all; cmd/benchfig
// prints the corresponding tables.
package repro

import (
	"testing"

	"repro/internal/connections"
	"repro/internal/core"
	"repro/internal/gals"
	"repro/internal/hls"
	"repro/internal/matchlib"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/synth"
)

// --- Table 1 / Figure 2: Connections channel kinds ---

func benchChannel(b *testing.B, kind connections.Kind, opts ...connections.Option) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := connections.NewOut[int](), connections.NewIn[int]()
	connections.Bind(clk, "ch", kind, 4, out, in, opts...)
	clk.Spawn("p", func(th *sim.Thread) {
		for i := 0; ; i++ {
			out.Push(th, i)
			th.Wait()
		}
	})
	var got int
	clk.Spawn("c", func(th *sim.Thread) {
		for {
			if _, ok := in.PopNB(th); ok {
				got++
			}
			th.Wait()
		}
	})
	b.ResetTimer()
	s.RunCycles(clk, uint64(b.N))
	b.ReportMetric(float64(got)/float64(b.N), "transfers/cycle")
}

func BenchmarkTable1ChannelCombinational(b *testing.B) {
	benchChannel(b, connections.KindCombinational)
}
func BenchmarkTable1ChannelBypass(b *testing.B)   { benchChannel(b, connections.KindBypass) }
func BenchmarkTable1ChannelPipeline(b *testing.B) { benchChannel(b, connections.KindPipeline) }
func BenchmarkTable1ChannelBuffer(b *testing.B)   { benchChannel(b, connections.KindBuffer) }
func BenchmarkTable1ChannelStalled(b *testing.B) {
	benchChannel(b, connections.KindBuffer, connections.WithStall(0.3, 0.3, 1))
}

// --- Figure 3: arbitrated-crossbar cycles/transaction, three models ---

func BenchmarkFig3Crossbar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := matchlib.RunFig3([]int{2, 4, 8, 16}, 100, 7)
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.SigAcc/r.RTL, "sigacc/rtl@"+itoa(r.Ports))
			}
		}
	}
}

// --- §2.4: crossbar coding QoR through HLS + synthesis ---

func BenchmarkXbarQoRSrcLoop32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := hls.Optimize(hls.CrossbarSrcLoopDesign(32, 32))
		s := hls.Pipeline(d, hls.DefaultConstraints())
		synth.Report(synth.Optimize(synth.Map(s)), &synth.Default16nm)
	}
}

func BenchmarkXbarQoRDstLoop32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := hls.Optimize(hls.CrossbarDstLoopDesign(32, 32))
		s := hls.Pipeline(d, hls.DefaultConstraints())
		synth.Report(synth.Optimize(synth.Map(s)), &synth.Default16nm)
	}
}

// --- §2.2: HLS vs hand-RTL ±10% table ---

func BenchmarkQoRTable(b *testing.B) {
	f := core.DefaultFlow()
	for i := 0; i < b.N; i++ {
		if _, err := core.QoRTable(f); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4 / §3.1: GALS clock-domain crossings ---

func benchCrossing(b *testing.B, pausible bool) {
	s := sim.New()
	tx := s.AddClock("tx", 1000, 0)
	rx := s.AddClock("rx", 1013, 170)
	var push func(th *sim.Thread, v int)
	var popNB func() (int, bool)
	if pausible {
		f := gals.NewPausibleBisyncFIFO[int](s, "pf", tx, rx, 4, 40)
		push, popNB = f.Push, f.PopNB
	} else {
		f := gals.NewBruteForceSyncFIFO[int](s, "bf", tx, rx, 4)
		push, popNB = f.Push, f.PopNB
	}
	tx.Spawn("p", func(th *sim.Thread) {
		for i := 0; ; i++ {
			push(th, i)
			th.Wait()
		}
	})
	var got int
	rx.Spawn("c", func(th *sim.Thread) {
		for {
			if _, ok := popNB(); ok {
				got++
			}
			th.Wait()
		}
	})
	b.ResetTimer()
	s.Run(sim.Time(uint64(b.N) * 1000))
	b.ReportMetric(float64(got)/float64(b.N), "transfers/txcycle")
}

func BenchmarkGALSPausibleFIFO(b *testing.B)   { benchCrossing(b, true) }
func BenchmarkGALSBruteForceFIFO(b *testing.B) { benchCrossing(b, false) }

func BenchmarkGALSAdaptiveClockMargin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := gals.RunMarginExperiment(900, 0.10, 1_000_000, 7)
		if i == 0 {
			b.ReportMetric(e.GainPct, "margin-gain-%")
		}
	}
}

// --- NoC ablation: wormhole mesh vs store-and-forward latency ---

func benchMeshTraffic(b *testing.B, opts ...connections.Option) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		m := noc.BuildMesh(clk, "m", 4, 4, 2, 4, opts...)
		const pkts = 8
		total := 0
		for src := 0; src < 16; src++ {
			src := src
			clk.Spawn("g", func(th *sim.Thread) {
				for k := 0; k < pkts; k++ {
					dst := (src + 5 + k) % 16
					if dst == src {
						dst = (dst + 1) % 16
					}
					m.Inject[src].Push(th, noc.Packet{Src: src, Dst: dst, ID: uint64(src*100 + k), Payload: []uint64{1, 2}})
					th.Wait()
				}
			})
			total += pkts
		}
		got := 0
		for dst := 0; dst < 16; dst++ {
			dst := dst
			clk.Spawn("s", func(th *sim.Thread) {
				for {
					if _, ok := m.Eject[dst].PopNB(th); ok {
						got++
						if got == total {
							th.Sim().Stop()
						}
					}
					th.Wait()
				}
			})
		}
		s.Run(sim.Infinity - 1)
		if got != total {
			b.Fatalf("delivered %d/%d", got, total)
		}
	}
}

func BenchmarkNoCMeshClean(b *testing.B) { benchMeshTraffic(b) }
func BenchmarkNoCMeshStalled(b *testing.B) {
	benchMeshTraffic(b, connections.WithStall(0.2, 0.2, 3))
}
func BenchmarkNoCMeshRTLCosim(b *testing.B) {
	benchMeshTraffic(b, connections.WithMode(connections.ModeRTLCosim))
}

// --- Figure 5 / §4: the prototype SoC's six system tests ---

func benchSoCTest(b *testing.B, idx int, mode connections.Mode, galsOn bool) {
	tc := soc.Tests()[idx]
	var cycles, edges uint64
	for i := 0; i < b.N; i++ {
		cfg := soc.DefaultConfig()
		cfg.Mode = mode
		cfg.GALS = galsOn
		s, verify := tc.Build(cfg)
		c, err := s.Run(5_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := verify(s); err != nil {
			b.Fatal(err)
		}
		cycles = c
		edges += s.Sim.TotalEdges()
	}
	reportSimRates(b, cycles, edges)
}

// reportSimRates attaches the shared simulation-throughput metrics to a
// SoC-level benchmark: the elapsed cycle count of one run (bit-identical
// across runs and a regression guard for scheduler changes), simulated
// cycles per wall second, and kernel edges processed per wall second.
func reportSimRates(b *testing.B, cyclesPerRun, totalEdges uint64) {
	b.ReportMetric(float64(cyclesPerRun), "cycles")
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(cyclesPerRun)*float64(b.N)/secs, "cycles/sec")
		b.ReportMetric(float64(totalEdges)/secs, "edges/sec")
	}
}

func BenchmarkSoCMemcpy(b *testing.B)  { benchSoCTest(b, 0, connections.ModeSimAccurate, false) }
func BenchmarkSoCVecAdd(b *testing.B)  { benchSoCTest(b, 1, connections.ModeSimAccurate, false) }
func BenchmarkSoCDot(b *testing.B)     { benchSoCTest(b, 2, connections.ModeSimAccurate, false) }
func BenchmarkSoCConv1D(b *testing.B)  { benchSoCTest(b, 3, connections.ModeSimAccurate, false) }
func BenchmarkSoCKMeans(b *testing.B)  { benchSoCTest(b, 4, connections.ModeSimAccurate, false) }
func BenchmarkSoCMaxPool(b *testing.B) { benchSoCTest(b, 5, connections.ModeSimAccurate, false) }
func BenchmarkSoCConv1DGALS(b *testing.B) {
	benchSoCTest(b, 3, connections.ModeSimAccurate, true)
}

// --- Partition-parallel engine: sequential vs sharded GALS SoC ---
//
// The same 20-clock GALS memcpy system test, run on the sequential
// kernel (Partitions=0) and on the partition engine at increasing shard
// counts. Results are bit-identical at every width >= 1 (the engine's
// core invariant, pinned by internal/soc's partition tests), so the
// cycles metric must not move across the sharded benchmarks — only wall
// time may. The sequential run stops at the firmware's exit edge rather
// than the next epoch boundary, so its cycle count sits up to one epoch
// below the sharded ones. Recorded baselines live in BENCH_partition.json.

func benchSoCPartitioned(b *testing.B, partitions int) {
	tc := soc.Tests()[0] // memcpy: traffic spread across the mesh
	var cycles, edges uint64
	for i := 0; i < b.N; i++ {
		cfg := soc.DefaultConfig()
		cfg.GALS = true
		cfg.Partitions = partitions
		s, verify := tc.Build(cfg)
		c, err := s.Run(5_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := verify(s); err != nil {
			b.Fatal(err)
		}
		cycles = c
		edges += s.Sim.TotalEdges()
	}
	reportSimRates(b, cycles, edges)
}

func BenchmarkPartitionSoCSequential(b *testing.B) { benchSoCPartitioned(b, 0) }
func BenchmarkPartitionSoCShards1(b *testing.B)    { benchSoCPartitioned(b, 1) }
func BenchmarkPartitionSoCShards2(b *testing.B)    { benchSoCPartitioned(b, 2) }
func BenchmarkPartitionSoCShards4(b *testing.B)    { benchSoCPartitioned(b, 4) }
func BenchmarkPartitionSoCShards8(b *testing.B)    { benchSoCPartitioned(b, 8) }

// --- Figure 6: TLM vs RTL-cosim wall time (the speedup axis) ---

func BenchmarkFig6TLMModel(b *testing.B) { benchSoCTest(b, 1, connections.ModeSimAccurate, false) }

func BenchmarkFig6RTLCosim(b *testing.B) {
	tc := soc.Tests()[1]
	var cycles, edges uint64
	for i := 0; i < b.N; i++ {
		cfg := soc.DefaultConfig()
		cfg.Mode = connections.ModeRTLCosim
		cfg.ShadowNetlists = true
		s, verify := tc.Build(cfg)
		c, err := s.Run(5_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := verify(s); err != nil {
			b.Fatal(err)
		}
		cycles = c
		edges += s.Sim.TotalEdges()
	}
	reportSimRates(b, cycles, edges)
}

// --- §3 / §4: back-end floorplan, clocking, and turnaround models ---

func BenchmarkBackendFloorplan(b *testing.B) {
	parts := core.TestchipPartitions()
	for i := 0; i < b.N; i++ {
		fp := physical.Plan(parts, &physical.Default16nm)
		if bad := fp.Overlaps(); len(bad) != 0 {
			b.Fatal("overlaps")
		}
	}
}

func BenchmarkBackendClockPlans(b *testing.B) {
	parts := core.TestchipPartitions()
	fp := physical.Plan(parts, &physical.Default16nm)
	for i := 0; i < b.N; i++ {
		physical.SynchronousClockPlan(parts, fp, &physical.Default16nm)
		physical.GALSClockPlan(parts, fp, &physical.Default16nm)
	}
}

func BenchmarkBackendAnneal(b *testing.B) {
	parts := core.TestchipPartitions()
	conns := core.TestchipConnectivity()
	var improve float64
	for i := 0; i < b.N; i++ {
		r := physical.Refine(parts, conns, &physical.Default16nm, 1000, int64(i))
		improve = 100 * (r.InitialCost - r.FinalCost) / r.InitialCost
	}
	b.ReportMetric(improve, "cost-improvement-%")
}

func BenchmarkAblationIISweep(b *testing.B) {
	d := hls.Optimize(hls.FIRDesign(16, 16))
	s := hls.Pipeline(d, hls.Constraints{ClockPS: 500, MaxMuls: 4})
	var savings float64
	for i := 0; i < b.N; i++ {
		bs := hls.IISweep(s, []int{1, 2, 4, 8})
		savings = bs[len(bs)-1].SavingsPct
	}
	b.ReportMetric(savings, "ii8-savings-%")
}

func BenchmarkBackendTurnaround(b *testing.B) {
	parts := core.TestchipPartitions()
	var r physical.TurnaroundReport
	for i := 0; i < b.N; i++ {
		r = physical.DefaultRuntime.Turnaround(parts)
	}
	b.ReportMetric(r.HierParallelHours, "hier-hours")
	b.ReportMetric(r.FlatHours, "flat-hours")
}

// --- §4: productivity estimate ---

func BenchmarkProductivityTable(b *testing.B) {
	f := core.DefaultFlow()
	for i := 0; i < b.N; i++ {
		if _, err := core.ProductivityTable(f); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
