GO ?= go

.PHONY: build test check bench vet

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Fast correctness tier for scheduler/channel work: vet everything, then
# race-test the packages whose concurrency the kernel refactor touches
# (plus the campaign runner's worker pool).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/sim ./internal/connections ./internal/gals ./internal/exp

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

vet:
	$(GO) vet ./...
