GO ?= go

.PHONY: build test check bench vet lint rateck mc serve-smoke fleet-smoke fleet-soak

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Fast correctness tier for scheduler/channel work: vet everything
# (including the determinism vet), then race-test the packages whose
# concurrency the kernel refactor touches (plus the campaign runner's
# worker pool and the tracing layer), run the full SoC suite with channel
# tracing armed, enforce the disarmed tracing overhead budget (<= 2%
# over the untraced primitives), and hold the compiled RTL backend's
# throughput floor over the interpreter.
check: vet
	$(GO) test -race ./internal/sim ./internal/psim ./internal/connections ./internal/gals ./internal/exp ./internal/trace ./internal/serve ./internal/fleet ./internal/fleet/wire ./internal/ratecheck ./internal/mc
	SOC_TRACE=1 $(GO) test ./internal/soc
	TRACE_OVERHEAD_GUARD=1 $(GO) test -run TestDisarmedOverheadGuard -v ./internal/connections
	RTL_PERF_GATE=1 $(GO) test -count=1 -run TestRTLPerfGate -v .
	$(MAKE) rateck
	$(MAKE) mc
	$(MAKE) serve-smoke
	$(MAKE) fleet-smoke

# End-to-end smoke of the socd daemon: boot on an ephemeral port, submit
# lint + sim jobs over HTTP, assert the cache-hit byte identity, and
# drain on SIGTERM.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end smoke of the socgw fleet: gateway + 3 workers, a mid-batch
# worker kill/restart with zero lost jobs, and byte-identity of every
# result against a single-daemon rerun.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# Sustained-load soak of the fleet with mid-soak worker chaos; heavier
# than fleet-smoke, run on demand (ROUNDS=n to lengthen).
fleet-soak:
	sh scripts/fleet_soak.sh

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# go vet plus the repo's determinism vet: the kernel packages must never
# read wall-clock time, touch the global math/rand source, or iterate
# maps into ordered output.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/detvet

# Static design-rule check of every shipped SoC design, both clockings.
lint:
	$(GO) run ./cmd/socsim -test all -lint
	$(GO) run ./cmd/socsim -test all -gals -lint

# Static communication-rate check (SDF balance, buffer sizing,
# throughput bounds) of every shipped SoC design, both clockings.
rateck:
	$(GO) run ./cmd/socsim -test all -rateck
	$(GO) run ./cmd/socsim -test all -gals -rateck

# Bounded model check: every shipped design's declared channel graph,
# plus both clean examples, must verify; both seeded-bug fixtures must
# be caught (the ! lines fail the build if the checker goes blind).
mc:
	$(GO) run ./cmd/socsim -test all -mc
	$(GO) run ./cmd/socsim -test mcserdes -mc
	$(GO) run ./cmd/socsim -test mcgals -mc
	! $(GO) run ./cmd/socsim -test mcdeadlock -mc
	! $(GO) run ./cmd/socsim -test mcbufeqv -mc
